//! Signed fixed-point formats with saturating quantization.

use std::fmt;

/// Error returned when constructing an invalid [`Format`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatError {
    /// The requested total width was zero or exceeded [`Format::MAX_WIDTH`].
    InvalidWidth(u8),
    /// The fractional count left no room for the sign bit
    /// (`frac >= width` would mean zero non-fractional bits).
    InvalidFraction { width: u8, frac: i16 },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FormatError::InvalidWidth(w) => {
                write!(
                    f,
                    "fixed-point width {w} is outside 1..={}",
                    Format::MAX_WIDTH
                )
            }
            FormatError::InvalidFraction { width, frac } => {
                write!(
                    f,
                    "fractional bit count {frac} is invalid for width {width}"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// A signed two's complement fixed-point format.
///
/// A value `x` is stored as the integer `raw = round(x * 2^frac)` saturated
/// to `width` bits; `frac` may be negative, in which case the quantization
/// step is larger than one (useful when a group of large-magnitude values
/// must fit in a narrow width).
///
/// The paper's `n` ("non-fractional places", including the sign bit) is
/// [`Format::integer_bits`]; `n = width - frac`.
///
/// # Examples
///
/// ```
/// use age_fixed::Format;
///
/// let fmt = Format::new(5, 2)?; // 5 bits, step 0.25, range [-4, 3.75]
/// assert_eq!(fmt.integer_bits(), 3);
/// assert_eq!(fmt.dequantize(fmt.quantize(1.3)), 1.25);
/// assert_eq!(fmt.dequantize(fmt.quantize(100.0)), 3.75); // saturates
/// # Ok::<(), age_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Format {
    width: u8,
    frac: i16,
}

impl Format {
    /// Largest supported total width in bits.
    pub const MAX_WIDTH: u8 = 32;

    /// Creates a format with `width` total bits, `frac` of them fractional.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidWidth`] if `width` is zero or larger
    /// than [`Format::MAX_WIDTH`], and [`FormatError::InvalidFraction`] if
    /// `frac >= width` (no sign bit would remain) or `frac` is unreasonably
    /// negative (`width - frac > 64`).
    pub fn new(width: u8, frac: i16) -> Result<Self, FormatError> {
        if width == 0 || width > Self::MAX_WIDTH {
            return Err(FormatError::InvalidWidth(width));
        }
        let integer_bits = i32::from(width) - i32::from(frac);
        if !(1..=64).contains(&integer_bits) {
            return Err(FormatError::InvalidFraction { width, frac });
        }
        Ok(Format { width, frac })
    }

    /// Creates a format from the paper's notation: total width and
    /// non-fractional places `n` (including the sign bit).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Format::new`] with `frac = width - n`.
    pub fn from_integer_bits(width: u8, n: u8) -> Result<Self, FormatError> {
        Format::new(width, i16::from(width) - i16::from(n))
    }

    /// Total width in bits (the paper's `w`).
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Fractional bit count (may be negative).
    pub fn frac(&self) -> i16 {
        self.frac
    }

    /// Non-fractional places including the sign bit (the paper's `n`).
    pub fn integer_bits(&self) -> u8 {
        (i32::from(self.width) - i32::from(self.frac)) as u8
    }

    /// The quantization step `2^-frac`.
    pub fn step(&self) -> f64 {
        exp2(-i32::from(self.frac))
    }

    /// Largest raw integer representable (`2^(width-1) - 1`).
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.width - 1)) - 1
    }

    /// Smallest raw integer representable (`-2^(width-1)`).
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.width - 1))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        self.dequantize(self.max_raw())
    }

    /// Smallest representable value.
    pub fn min_value(&self) -> f64 {
        self.dequantize(self.min_raw())
    }

    /// Quantizes `x` to the nearest representable raw integer, saturating at
    /// the format bounds. Non-finite inputs saturate (NaN maps to zero).
    pub fn quantize(&self, x: f64) -> i64 {
        if x.is_nan() {
            return 0;
        }
        let scaled = x * exp2(i32::from(self.frac));
        if scaled >= self.max_raw() as f64 {
            self.max_raw()
        } else if scaled <= self.min_raw() as f64 {
            self.min_raw()
        } else {
            // Round half away from zero, like an MCU's fixed-point library.
            scaled.round() as i64
        }
    }

    /// Converts a raw integer back to its real value.
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 * self.step()
    }

    /// Quantizes and immediately dequantizes, yielding the representable
    /// value nearest to `x` (saturated to the format range).
    pub fn round_trip(&self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }

    /// Maximum absolute quantization error for values inside the
    /// representable range: half a step.
    pub fn half_step(&self) -> f64 {
        self.step() * 0.5
    }

    /// Encodes a raw integer as a `width`-bit two's complement pattern
    /// suitable for [`crate::BitWriter::write_bits`].
    ///
    /// # Panics
    ///
    /// Debug-asserts that `raw` is within the format's raw range.
    pub fn to_bits(&self, raw: i64) -> u64 {
        debug_assert!(raw >= self.min_raw() && raw <= self.max_raw());
        (raw as u64) & self.mask()
    }

    /// Decodes a `width`-bit two's complement pattern into a raw integer
    /// (sign-extending).
    pub fn from_bits(&self, bits: u64) -> i64 {
        let bits = bits & self.mask();
        let sign_bit = 1u64 << (self.width - 1);
        if bits & sign_bit != 0 {
            (bits | !self.mask()) as i64
        } else {
            bits as i64
        }
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.integer_bits(), self.frac)
    }
}

/// Computes `2^e` as an `f64` for any `i32` exponent.
fn exp2(e: i32) -> f64 {
    f64::powi(2.0, e)
}

/// Smallest non-fractional width `n` (including the sign bit) such that a
/// fixed-point format with `n` integer bits represents `x` without
/// saturating, i.e. `-2^(n-1) <= x < 2^(n-1)`.
///
/// This is the per-value "exponent" that AGE's group-formation step
/// compresses with run-length encoding (§4.3). The result is clamped to
/// `max_n`, so callers can bound exponents by the original format.
///
/// # Examples
///
/// ```
/// use age_fixed::required_integer_bits;
///
/// assert_eq!(required_integer_bits(0.0, 16), 1);
/// assert_eq!(required_integer_bits(0.25, 16), 1);
/// assert_eq!(required_integer_bits(1.5, 16), 2);
/// assert_eq!(required_integer_bits(-2.0, 16), 2);  // -2 == -2^1 fits in n=2
/// assert_eq!(required_integer_bits(2.0, 16), 3);
/// ```
pub fn required_integer_bits(x: f64, max_n: u8) -> u8 {
    let max_n = max_n.max(1);
    if !x.is_finite() {
        return max_n;
    }
    for n in 1..=max_n {
        let hi = exp2(i32::from(n) - 1);
        if x < hi && x >= -hi {
            return n;
        }
    }
    max_n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Format::new(0, 0).is_err());
        assert!(Format::new(33, 0).is_err());
        assert!(Format::new(16, 16).is_err()); // no sign bit left
        assert!(Format::new(16, 13).is_ok());
        assert!(Format::new(5, -3).is_ok()); // coarse step of 8
        assert!(Format::new(4, -61).is_err()); // integer bits > 64
    }

    #[test]
    fn from_integer_bits_matches_paper_notation() {
        // Activity: 16 bits, 13 fractional => n0 = 3.
        let fmt = Format::from_integer_bits(16, 3).unwrap();
        assert_eq!(fmt.frac(), 13);
        assert_eq!(fmt.integer_bits(), 3);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let fmt = Format::new(8, 4).unwrap(); // step 1/16
        assert_eq!(fmt.quantize(0.0), 0);
        assert_eq!(fmt.quantize(1.0), 16);
        assert_eq!(fmt.quantize(1.03), 16); // 1.03*16 = 16.48 -> 16
        assert_eq!(fmt.quantize(1.04), 17); // 16.64 -> 17
        assert_eq!(fmt.quantize(-1.04), -17);
    }

    #[test]
    fn quantize_saturates() {
        let fmt = Format::new(8, 4).unwrap(); // raw in [-128, 127]
        assert_eq!(fmt.quantize(1e9), 127);
        assert_eq!(fmt.quantize(-1e9), -128);
        assert_eq!(fmt.quantize(f64::INFINITY), 127);
        assert_eq!(fmt.quantize(f64::NEG_INFINITY), -128);
        assert_eq!(fmt.quantize(f64::NAN), 0);
    }

    #[test]
    fn negative_frac_gives_coarse_steps() {
        let fmt = Format::new(5, -3).unwrap(); // step 8, range [-128, 120]
        assert_eq!(fmt.step(), 8.0);
        assert_eq!(fmt.quantize(100.0), 13); // 100/8 = 12.5 -> 13 (half away)
        assert_eq!(fmt.dequantize(13), 104.0);
        assert_eq!(fmt.max_value(), 120.0);
        assert_eq!(fmt.min_value(), -128.0);
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let fmt = Format::new(7, 3).unwrap();
        let mut x = fmt.min_value();
        while x < fmt.max_value() {
            let err = (fmt.round_trip(x) - x).abs();
            assert!(err <= fmt.half_step() + 1e-12, "x={x} err={err}");
            x += 0.0371;
        }
    }

    #[test]
    fn bit_codec_roundtrips_all_raws() {
        for width in 1..=12u8 {
            let fmt = Format::new(width, 0).unwrap();
            for raw in fmt.min_raw()..=fmt.max_raw() {
                assert_eq!(fmt.from_bits(fmt.to_bits(raw)), raw);
            }
        }
    }

    #[test]
    fn required_integer_bits_boundary_cases() {
        assert_eq!(required_integer_bits(0.999, 16), 1);
        assert_eq!(required_integer_bits(1.0, 16), 2);
        assert_eq!(required_integer_bits(-1.0, 16), 1);
        assert_eq!(required_integer_bits(-1.0001, 16), 2);
        assert_eq!(required_integer_bits(3.99, 16), 3);
        assert_eq!(required_integer_bits(4.0, 16), 4);
        assert_eq!(required_integer_bits(1e30, 8), 8); // clamped
        assert_eq!(required_integer_bits(f64::NAN, 8), 8);
    }

    #[test]
    fn display_formats() {
        let fmt = Format::new(16, 13).unwrap();
        assert_eq!(fmt.to_string(), "Q3.13");
        let err = Format::new(0, 0).unwrap_err();
        assert!(err.to_string().contains("width 0"));
    }

    #[test]
    fn integer_only_formats() {
        // MNIST: 9 bits, 0 fractional.
        let fmt = Format::new(9, 0).unwrap();
        assert_eq!(fmt.max_value(), 255.0);
        assert_eq!(fmt.quantize(254.6), 255);
        assert_eq!(fmt.round_trip(200.0), 200.0);
    }
}
