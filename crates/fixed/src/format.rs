//! Signed fixed-point formats with saturating quantization.

use std::fmt;

/// Error returned when constructing an invalid [`Format`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatError {
    /// The requested total width was zero or exceeded [`Format::MAX_WIDTH`].
    InvalidWidth(u8),
    /// The fractional count left no room for the sign bit
    /// (`frac >= width` would mean zero non-fractional bits).
    InvalidFraction { width: u8, frac: i16 },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FormatError::InvalidWidth(w) => {
                write!(
                    f,
                    "fixed-point width {w} is outside 1..={}",
                    Format::MAX_WIDTH
                )
            }
            FormatError::InvalidFraction { width, frac } => {
                write!(
                    f,
                    "fractional bit count {frac} is invalid for width {width}"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// A signed two's complement fixed-point format.
///
/// A value `x` is stored as the integer `raw = round(x * 2^frac)` saturated
/// to `width` bits; `frac` may be negative, in which case the quantization
/// step is larger than one (useful when a group of large-magnitude values
/// must fit in a narrow width).
///
/// The paper's `n` ("non-fractional places", including the sign bit) is
/// [`Format::integer_bits`]; `n = width - frac`.
///
/// # Examples
///
/// ```
/// use age_fixed::Format;
///
/// let fmt = Format::new(5, 2)?; // 5 bits, step 0.25, range [-4, 3.75]
/// assert_eq!(fmt.integer_bits(), 3);
/// assert_eq!(fmt.dequantize(fmt.quantize(1.3)), 1.25);
/// assert_eq!(fmt.dequantize(fmt.quantize(100.0)), 3.75); // saturates
/// # Ok::<(), age_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Format {
    width: u8,
    frac: i16,
}

impl Format {
    /// Largest supported total width in bits.
    pub const MAX_WIDTH: u8 = 32;

    /// Creates a format with `width` total bits, `frac` of them fractional.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidWidth`] if `width` is zero or larger
    /// than [`Format::MAX_WIDTH`], and [`FormatError::InvalidFraction`] if
    /// `frac >= width` (no sign bit would remain) or `frac` is unreasonably
    /// negative (`width - frac > 64`).
    pub fn new(width: u8, frac: i16) -> Result<Self, FormatError> {
        if width == 0 || width > Self::MAX_WIDTH {
            return Err(FormatError::InvalidWidth(width));
        }
        let integer_bits = i32::from(width) - i32::from(frac);
        if !(1..=64).contains(&integer_bits) {
            return Err(FormatError::InvalidFraction { width, frac });
        }
        Ok(Format { width, frac })
    }

    /// Creates a format from the paper's notation: total width and
    /// non-fractional places `n` (including the sign bit).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Format::new`] with `frac = width - n`.
    pub fn from_integer_bits(width: u8, n: u8) -> Result<Self, FormatError> {
        Format::new(width, i16::from(width) - i16::from(n))
    }

    /// Total width in bits (the paper's `w`).
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Fractional bit count (may be negative).
    pub fn frac(&self) -> i16 {
        self.frac
    }

    /// Non-fractional places including the sign bit (the paper's `n`).
    pub fn integer_bits(&self) -> u8 {
        (i32::from(self.width) - i32::from(self.frac)) as u8
    }

    /// The quantization step `2^-frac`.
    pub fn step(&self) -> f64 {
        exp2(-i32::from(self.frac))
    }

    /// Largest raw integer representable (`2^(width-1) - 1`).
    pub fn max_raw(&self) -> i64 {
        (1i64 << (self.width - 1)) - 1
    }

    /// Smallest raw integer representable (`-2^(width-1)`).
    pub fn min_raw(&self) -> i64 {
        -(1i64 << (self.width - 1))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        self.dequantize(self.max_raw())
    }

    /// Smallest representable value.
    pub fn min_value(&self) -> f64 {
        self.dequantize(self.min_raw())
    }

    /// Quantizes `x` to the nearest representable raw integer, saturating at
    /// the format bounds. Non-finite inputs saturate (NaN maps to zero).
    pub fn quantize(&self, x: f64) -> i64 {
        if x.is_nan() {
            return 0;
        }
        let scaled = x * exp2(i32::from(self.frac));
        if scaled >= self.max_raw() as f64 {
            self.max_raw()
        } else if scaled <= self.min_raw() as f64 {
            self.min_raw()
        } else {
            // Round half away from zero, like an MCU's fixed-point library.
            scaled.round() as i64
        }
    }

    /// Converts a raw integer back to its real value.
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 * self.step()
    }

    /// Quantizes and immediately dequantizes, yielding the representable
    /// value nearest to `x` (saturated to the format range).
    pub fn round_trip(&self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }

    /// Maximum absolute quantization error for values inside the
    /// representable range: half a step.
    pub fn half_step(&self) -> f64 {
        self.step() * 0.5
    }

    /// Encodes a raw integer as a `width`-bit two's complement pattern
    /// suitable for [`crate::BitWriter::write_bits`].
    ///
    /// # Panics
    ///
    /// Debug-asserts that `raw` is within the format's raw range.
    pub fn to_bits(&self, raw: i64) -> u64 {
        debug_assert!(raw >= self.min_raw() && raw <= self.max_raw());
        (raw as u64) & self.mask()
    }

    /// Decodes a `width`-bit two's complement pattern into a raw integer
    /// (sign-extending).
    pub fn from_bits(&self, bits: u64) -> i64 {
        let bits = bits & self.mask();
        let sign_bit = 1u64 << (self.width - 1);
        if bits & sign_bit != 0 {
            (bits | !self.mask()) as i64
        } else {
            bits as i64
        }
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Quantizes a whole slice into raw integers, replacing the contents of
    /// `out` (which is cleared and resized — no allocation once warm).
    ///
    /// The scale factor and saturation bounds are hoisted out of the loop so
    /// the body is pure straight-line float math the compiler can vectorize.
    /// Results are bit-identical to calling [`Format::quantize`] per element.
    pub fn quantize_slice(&self, xs: &[f64], out: &mut Vec<i64>) {
        out.clear();
        out.resize(xs.len(), 0);
        let scale = exp2(i32::from(self.frac));
        let max_raw = self.max_raw();
        let min_raw = self.min_raw();
        let hi = max_raw as f64;
        let lo = min_raw as f64;
        for (raw, &x) in out.iter_mut().zip(xs) {
            let scaled = x * scale;
            *raw = if x.is_nan() {
                0
            } else if scaled >= hi {
                max_raw
            } else if scaled <= lo {
                min_raw
            } else {
                scaled.round() as i64
            };
        }
    }

    /// Quantizes a whole slice straight to `width`-bit two's complement
    /// patterns ready for [`crate::BitWriter::write_fields`], replacing the
    /// contents of `out`.
    ///
    /// Fuses [`Format::quantize_slice`] and [`Format::to_bits`] into one
    /// lane loop; bit-identical to the per-element composition.
    pub fn quantize_bits_slice(&self, xs: &[f64], out: &mut Vec<u64>) {
        out.clear();
        out.resize(xs.len(), 0);
        let scale = exp2(i32::from(self.frac));
        let max_raw = self.max_raw();
        let min_raw = self.min_raw();
        let hi = max_raw as f64;
        let lo = min_raw as f64;
        let mask = self.mask();
        for (bits, &x) in out.iter_mut().zip(xs) {
            let scaled = x * scale;
            let raw = if x.is_nan() {
                0
            } else if scaled >= hi {
                max_raw
            } else if scaled <= lo {
                min_raw
            } else {
                scaled.round() as i64
            };
            *bits = (raw as u64) & mask;
        }
    }

    /// Sign-extends and dequantizes a slice of `width`-bit patterns,
    /// appending the real values to `out`.
    ///
    /// The step factor is hoisted out of the loop (one `2^e` for the whole
    /// group instead of one per sample); bit-identical to
    /// `fmt.dequantize(fmt.from_bits(b))` per element.
    pub fn dequantize_bits_slice(&self, bits: &[u64], out: &mut Vec<f64>) {
        let step = self.step();
        let mask = self.mask();
        let sign_bit = 1u64 << (self.width - 1);
        out.reserve(bits.len());
        for &b in bits {
            let b = b & mask;
            let raw = if b & sign_bit != 0 {
                (b | !mask) as i64
            } else {
                b as i64
            };
            out.push(raw as f64 * step);
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.integer_bits(), self.frac)
    }
}

/// Computes `2^e` as an `f64` for any `i32` exponent.
///
/// Normal-range exponents (every one a valid [`Format`] can produce, since
/// `Format::new` bounds `width - frac` to 1..=64) are built directly from the
/// IEEE-754 exponent field — a shift instead of a `powi` call in the
/// quantization hot loop. Powers of two are exact in both paths, so the
/// result is bit-identical to `f64::powi(2.0, e)`.
fn exp2(e: i32) -> f64 {
    if (-1022..=1023).contains(&e) {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        f64::powi(2.0, e)
    }
}

/// Smallest non-fractional width `n` (including the sign bit) such that a
/// fixed-point format with `n` integer bits represents `x` without
/// saturating, i.e. `-2^(n-1) <= x < 2^(n-1)`.
///
/// This is the per-value "exponent" that AGE's group-formation step
/// compresses with run-length encoding (§4.3). The result is clamped to
/// `max_n`, so callers can bound exponents by the original format.
///
/// # Examples
///
/// ```
/// use age_fixed::required_integer_bits;
///
/// assert_eq!(required_integer_bits(0.0, 16), 1);
/// assert_eq!(required_integer_bits(0.25, 16), 1);
/// assert_eq!(required_integer_bits(1.5, 16), 2);
/// assert_eq!(required_integer_bits(-2.0, 16), 2);  // -2 == -2^1 fits in n=2
/// assert_eq!(required_integer_bits(2.0, 16), 3);
/// ```
pub fn required_integer_bits(x: f64, max_n: u8) -> u8 {
    // Read the answer off the IEEE-754 exponent field instead of scanning
    // widths one by one: a finite x with unbiased exponent e satisfies
    // |x| < 2^(e+1), so n = e + 2 always fits, and nothing narrower does —
    // except x == -2^e exactly (sign set, zero mantissa, normal), the one
    // value whose magnitude bound is inclusive (-2^(n-1) <= x), which fits
    // in n = e + 1. The clamp covers every special case: zero and
    // subnormals come out far below 1, while NaN and the infinities carry
    // exponent field 0x7ff and come out far above any `max_n`.
    let bits = x.to_bits();
    let exp_field = ((bits >> 52) & 0x7ff) as i32;
    let neg_pow2 = (bits >> 63) != 0 && (bits & ((1u64 << 52) - 1)) == 0 && exp_field != 0;
    let n = exp_field - 1023 + 2 - i32::from(neg_pow2);
    n.clamp(1, i32::from(max_n.max(1))) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Format::new(0, 0).is_err());
        assert!(Format::new(33, 0).is_err());
        assert!(Format::new(16, 16).is_err()); // no sign bit left
        assert!(Format::new(16, 13).is_ok());
        assert!(Format::new(5, -3).is_ok()); // coarse step of 8
        assert!(Format::new(4, -61).is_err()); // integer bits > 64
    }

    #[test]
    fn from_integer_bits_matches_paper_notation() {
        // Activity: 16 bits, 13 fractional => n0 = 3.
        let fmt = Format::from_integer_bits(16, 3).unwrap();
        assert_eq!(fmt.frac(), 13);
        assert_eq!(fmt.integer_bits(), 3);
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let fmt = Format::new(8, 4).unwrap(); // step 1/16
        assert_eq!(fmt.quantize(0.0), 0);
        assert_eq!(fmt.quantize(1.0), 16);
        assert_eq!(fmt.quantize(1.03), 16); // 1.03*16 = 16.48 -> 16
        assert_eq!(fmt.quantize(1.04), 17); // 16.64 -> 17
        assert_eq!(fmt.quantize(-1.04), -17);
    }

    #[test]
    fn quantize_saturates() {
        let fmt = Format::new(8, 4).unwrap(); // raw in [-128, 127]
        assert_eq!(fmt.quantize(1e9), 127);
        assert_eq!(fmt.quantize(-1e9), -128);
        assert_eq!(fmt.quantize(f64::INFINITY), 127);
        assert_eq!(fmt.quantize(f64::NEG_INFINITY), -128);
        assert_eq!(fmt.quantize(f64::NAN), 0);
    }

    #[test]
    fn negative_frac_gives_coarse_steps() {
        let fmt = Format::new(5, -3).unwrap(); // step 8, range [-128, 120]
        assert_eq!(fmt.step(), 8.0);
        assert_eq!(fmt.quantize(100.0), 13); // 100/8 = 12.5 -> 13 (half away)
        assert_eq!(fmt.dequantize(13), 104.0);
        assert_eq!(fmt.max_value(), 120.0);
        assert_eq!(fmt.min_value(), -128.0);
    }

    #[test]
    fn quantization_error_is_bounded_by_half_step() {
        let fmt = Format::new(7, 3).unwrap();
        let mut x = fmt.min_value();
        while x < fmt.max_value() {
            let err = (fmt.round_trip(x) - x).abs();
            assert!(err <= fmt.half_step() + 1e-12, "x={x} err={err}");
            x += 0.0371;
        }
    }

    #[test]
    fn bit_codec_roundtrips_all_raws() {
        for width in 1..=12u8 {
            let fmt = Format::new(width, 0).unwrap();
            for raw in fmt.min_raw()..=fmt.max_raw() {
                assert_eq!(fmt.from_bits(fmt.to_bits(raw)), raw);
            }
        }
    }

    #[test]
    fn required_integer_bits_boundary_cases() {
        assert_eq!(required_integer_bits(0.999, 16), 1);
        assert_eq!(required_integer_bits(1.0, 16), 2);
        assert_eq!(required_integer_bits(-1.0, 16), 1);
        assert_eq!(required_integer_bits(-1.0001, 16), 2);
        assert_eq!(required_integer_bits(3.99, 16), 3);
        assert_eq!(required_integer_bits(4.0, 16), 4);
        assert_eq!(required_integer_bits(1e30, 8), 8); // clamped
        assert_eq!(required_integer_bits(f64::NAN, 8), 8);
    }

    #[test]
    fn display_formats() {
        let fmt = Format::new(16, 13).unwrap();
        assert_eq!(fmt.to_string(), "Q3.13");
        let err = Format::new(0, 0).unwrap_err();
        assert!(err.to_string().contains("width 0"));
    }

    #[test]
    fn required_integer_bits_matches_reference_scan() {
        // The original width-by-width scan, kept as the ground truth for the
        // exponent-field fast path.
        fn reference(x: f64, max_n: u8) -> u8 {
            let max_n = max_n.max(1);
            if !x.is_finite() {
                return max_n;
            }
            for n in 1..=max_n {
                let hi = exp2(i32::from(n) - 1);
                if x < hi && x >= -hi {
                    return n;
                }
            }
            max_n
        }
        let mut cases: Vec<f64> = vec![
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            -5e-324,
            f64::MAX,
            f64::MIN,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e30,
            -1e30,
        ];
        // Every power of two in the clamp-relevant range, its negation, and
        // the representable values on either side of each.
        for e in -20..=20 {
            let p = exp2(e);
            for v in [p, -p] {
                cases.extend([v, v.next_up(), v.next_down()]);
            }
        }
        // A dense irrational-step sweep across the interesting range.
        let mut x = -70.0;
        while x < 70.0 {
            cases.push(x);
            x += 0.0371;
        }
        for &x in &cases {
            for max_n in [1u8, 2, 5, 8, 16, 64] {
                assert_eq!(
                    required_integer_bits(x, max_n),
                    reference(x, max_n),
                    "x={x:e} max_n={max_n}"
                );
            }
        }
    }

    #[test]
    fn fast_exp2_is_bit_identical_to_powi() {
        for e in -1100..=1100 {
            assert_eq!(
                exp2(e).to_bits(),
                f64::powi(2.0, e).to_bits(),
                "exp2({e}) diverges from powi"
            );
        }
    }

    #[test]
    fn slice_apis_match_scalar_paths() {
        let cases = [
            Format::new(16, 13).unwrap(),
            Format::new(5, -3).unwrap(),
            Format::new(32, 31).unwrap(),
            Format::new(1, 0).unwrap(),
            Format::new(9, 0).unwrap(),
        ];
        let xs: Vec<f64> = vec![
            0.0,
            -0.0,
            1.25,
            -1.03,
            1e9,
            -1e9,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            0.49999,
            -0.5,
            123.456,
        ];
        let mut raws = Vec::new();
        let mut bits = Vec::new();
        for fmt in cases {
            fmt.quantize_slice(&xs, &mut raws);
            fmt.quantize_bits_slice(&xs, &mut bits);
            assert_eq!(raws.len(), xs.len());
            for (i, &x) in xs.iter().enumerate() {
                let raw = fmt.quantize(x);
                assert_eq!(raws[i], raw, "{fmt} x={x}");
                assert_eq!(bits[i], fmt.to_bits(raw), "{fmt} x={x}");
            }
            let mut values = vec![7.0]; // appends after existing content
            fmt.dequantize_bits_slice(&bits, &mut values);
            assert_eq!(values[0], 7.0);
            for (i, &b) in bits.iter().enumerate() {
                assert_eq!(
                    values[i + 1],
                    fmt.dequantize(fmt.from_bits(b)),
                    "{fmt} bits={b:#x}"
                );
            }
        }
    }

    #[test]
    fn integer_only_formats() {
        // MNIST: 9 bits, 0 fractional.
        let fmt = Format::new(9, 0).unwrap();
        assert_eq!(fmt.max_value(), 255.0);
        assert_eq!(fmt.quantize(254.6), 255);
        assert_eq!(fmt.round_trip(200.0), 200.0);
    }
}
