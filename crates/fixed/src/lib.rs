//! Fixed-point arithmetic and bit-level packing for Adaptive Group Encoding.
//!
//! Low-power microcontrollers operate on fixed-point numbers: a value is an
//! integer `raw` interpreted as `raw / 2^frac`, stored in `width` bits of
//! two's complement. The AGE paper (§4.1) describes each measurement feature
//! as a `w0`-bit value with `n0` *non-fractional* bits; the relationship is
//! `n0 = w0 - frac0`, and `n0` logically plays the role of an exponent.
//!
//! This crate provides:
//!
//! - [`Format`]: a fixed-point format (total width + fractional bits, where
//!   the fractional count may be negative to represent coarse steps larger
//!   than one), with saturating quantization and exact dequantization.
//! - [`required_integer_bits`]: the smallest non-fractional width (including
//!   the sign bit) that can hold a value without saturating — the "exponent"
//!   AGE compresses with run-length encoding.
//! - [`BitWriter`] / [`BitReader`]: MSB-first bit packing used to assemble
//!   byte-exact messages.
//!
//! # Examples
//!
//! ```
//! use age_fixed::Format;
//!
//! // A 16-bit format with 13 fractional bits (3 non-fractional), as used by
//! // the Activity dataset.
//! let fmt = Format::new(16, 13)?;
//! let raw = fmt.quantize(1.25);
//! assert_eq!(fmt.dequantize(raw), 1.25);
//! # Ok::<(), age_fixed::FormatError>(())
//! ```

mod bits;
mod format;

pub use bits::{BitReader, BitReaderError, BitWriter};
pub use format::{required_integer_bits, Format, FormatError};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roundtrip_smoke() {
        let fmt = Format::new(16, 13).unwrap();
        let mut w = BitWriter::new();
        let raw = fmt.quantize(-0.75);
        w.write_bits(fmt.to_bits(raw), fmt.width());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let got = fmt.from_bits(r.read_bits(fmt.width()).unwrap());
        assert_eq!(fmt.dequantize(got), -0.75);
    }
}
