//! Randomized property tests for fixed-point formats and bit packing,
//! driven by the workspace's deterministic PRNG (no external test deps).

use age_fixed::{required_integer_bits, BitReader, BitWriter, Format};
use age_telemetry::DetRng;

const CASES: usize = 512;

/// A valid random format: width 1..=32, integer bits 1..=40.
fn random_format(rng: &mut DetRng) -> Format {
    let width = rng.gen_range(1u32..=32) as u8;
    let n = rng.gen_range(1i64..=40) as i16;
    let frac = i16::from(width) - n;
    Format::new(width, frac).expect("generator produces valid formats")
}

#[test]
fn quantize_never_leaves_raw_range() {
    let mut rng = DetRng::seed_from_u64(0xF1);
    for _ in 0..CASES {
        let fmt = random_format(&mut rng);
        let x = rng.gen_range(-1e12f64..1e12);
        let raw = fmt.quantize(x);
        assert!(raw >= fmt.min_raw(), "{fmt:?} x={x} raw={raw}");
        assert!(raw <= fmt.max_raw(), "{fmt:?} x={x} raw={raw}");
    }
}

#[test]
fn quantize_is_idempotent() {
    let mut rng = DetRng::seed_from_u64(0xF2);
    for _ in 0..CASES {
        let fmt = random_format(&mut rng);
        let x = rng.gen_range(-1e9f64..1e9);
        let once = fmt.round_trip(x);
        let twice = fmt.round_trip(once);
        assert_eq!(once, twice, "{fmt:?} x={x}");
    }
}

#[test]
fn in_range_error_bounded_by_half_step() {
    let mut rng = DetRng::seed_from_u64(0xF3);
    for _ in 0..CASES {
        let fmt = random_format(&mut rng);
        let t = rng.gen_range(0.0f64..1.0);
        // Pick x inside the representable range.
        let x = fmt.min_value() + t * (fmt.max_value() - fmt.min_value());
        let err = (fmt.round_trip(x) - x).abs();
        assert!(
            err <= fmt.half_step() * (1.0 + 1e-9),
            "x={} err={} half_step={}",
            x,
            err,
            fmt.half_step()
        );
    }
}

#[test]
fn bits_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xF4);
    for _ in 0..CASES {
        let fmt = random_format(&mut rng);
        // Derive an in-range raw value from a random draw.
        let span = (fmt.max_raw() - fmt.min_raw()) as u64 + 1;
        let raw = fmt.min_raw() + (rng.next_u64() % span) as i64;
        assert_eq!(fmt.from_bits(fmt.to_bits(raw)), raw, "{fmt:?} raw={raw}");
    }
}

#[test]
fn required_bits_is_sufficient() {
    let mut rng = DetRng::seed_from_u64(0xF5);
    for _ in 0..CASES {
        let x = rng.gen_range(-1e6f64..1e6);
        let n = required_integer_bits(x, 40);
        // A format with n integer bits and plenty of width represents x
        // without saturating.
        let width = (n + 20).min(32);
        if let Ok(fmt) = Format::new(width, i16::from(width) - i16::from(n)) {
            let err = (fmt.round_trip(x) - x).abs();
            assert!(err <= fmt.half_step() + 1e-9, "x={x} n={n} err={err}");
        }
    }
}

#[test]
fn required_bits_is_minimal() {
    let mut rng = DetRng::seed_from_u64(0xF6);
    for _ in 0..CASES {
        let x = rng.gen_range(-1e6f64..1e6);
        let n = required_integer_bits(x, 40);
        if n > 1 {
            // One fewer integer bit must fail to cover x.
            let hi = f64::powi(2.0, i32::from(n) - 2);
            assert!(x >= hi || x < -hi, "x={x} n={n}");
        }
    }
}

#[test]
fn writer_reader_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xF7);
    for _ in 0..CASES {
        let n_fields = rng.gen_range(0usize..50);
        let fields: Vec<(u64, u8)> = (0..n_fields)
            .map(|_| (rng.next_u64(), rng.gen_range(1u32..=64) as u8))
            .collect();
        let mut w = BitWriter::new();
        for &(v, c) in &fields {
            w.write_bits(v, c);
        }
        let expected_bits: usize = fields.iter().map(|&(_, c)| usize::from(c)).sum();
        assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), expected_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, c) in &fields {
            let mask = if c == 64 { u64::MAX } else { (1u64 << c) - 1 };
            assert_eq!(r.read_bits(c).unwrap(), v & mask);
        }
    }
}

/// The original bit-at-a-time writer/reader, kept verbatim as a reference
/// oracle: the word-level implementation in `age_fixed::bits` must stay
/// byte-identical to this for every input sequence.
mod reference {
    pub struct SlowWriter {
        bytes: Vec<u8>,
        /// Number of valid bits in the final partial byte (0 = none pending).
        pending_bits: u8,
    }

    impl SlowWriter {
        pub fn new() -> Self {
            SlowWriter {
                bytes: Vec::new(),
                pending_bits: 0,
            }
        }

        pub fn bit_len(&self) -> usize {
            if self.pending_bits == 0 {
                self.bytes.len() * 8
            } else {
                (self.bytes.len() - 1) * 8 + usize::from(8 - self.pending_bits)
            }
        }

        pub fn byte_len(&self) -> usize {
            self.bytes.len()
        }

        pub fn write_bits(&mut self, value: u64, count: u8) {
            assert!(count <= 64);
            for i in (0..count).rev() {
                let bit = ((value >> i) & 1) as u8;
                if self.pending_bits == 0 {
                    self.bytes.push(0);
                    self.pending_bits = 8;
                }
                let byte = self.bytes.last_mut().expect("pushed above");
                *byte |= bit << (self.pending_bits - 1);
                self.pending_bits -= 1;
            }
        }

        pub fn pad_to_bytes(&mut self, target_bytes: usize) {
            assert!(self.bit_len() <= target_bytes * 8);
            while !self.bit_len().is_multiple_of(8) {
                self.write_bits(0, 1);
            }
            self.bytes.resize(target_bytes, 0);
            self.pending_bits = 0;
        }

        pub fn into_bytes(self) -> Vec<u8> {
            self.bytes
        }
    }

    pub struct SlowReader<'a> {
        bytes: &'a [u8],
        bit_pos: usize,
    }

    impl<'a> SlowReader<'a> {
        pub fn new(bytes: &'a [u8]) -> Self {
            SlowReader { bytes, bit_pos: 0 }
        }

        pub fn remaining_bits(&self) -> usize {
            self.bytes.len() * 8 - self.bit_pos
        }

        pub fn read_bits(&mut self, count: u8) -> Option<u64> {
            assert!(count <= 64);
            if usize::from(count) > self.remaining_bits() {
                return None;
            }
            let mut out = 0u64;
            for _ in 0..count {
                let byte = self.bytes[self.bit_pos / 8];
                let bit = (byte >> (7 - (self.bit_pos % 8))) & 1;
                out = (out << 1) | u64::from(bit);
                self.bit_pos += 1;
            }
            Some(out)
        }
    }
}

#[test]
fn word_writer_matches_reference_on_random_sequences() {
    let mut rng = DetRng::seed_from_u64(0xF9);
    for _ in 0..CASES {
        let n_fields = rng.gen_range(0usize..60);
        let mut word = BitWriter::new();
        let mut slow = reference::SlowWriter::new();
        for _ in 0..n_fields {
            let c = rng.gen_range(0u32..=64) as u8;
            let v = rng.next_u64();
            word.write_bits(v, c);
            slow.write_bits(v, c);
            assert_eq!(word.bit_len(), slow.bit_len());
            assert_eq!(word.byte_len(), slow.byte_len());
        }
        if rng.gen_range(0u32..2) == 1 {
            let target = word.bit_len().div_ceil(8) + rng.gen_range(0usize..8);
            word.pad_to_bytes(target);
            slow.pad_to_bytes(target);
        }
        assert_eq!(word.into_bytes(), slow.into_bytes());
    }
}

#[test]
fn word_reader_matches_reference_on_random_streams() {
    let mut rng = DetRng::seed_from_u64(0xFA);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..40);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut word = BitReader::new(&bytes);
        let mut slow = reference::SlowReader::new(&bytes);
        for _ in 0..20 {
            let c = rng.gen_range(0u32..=64) as u8;
            match (word.read_bits(c), slow.read_bits(c)) {
                (Ok(a), Some(b)) => assert_eq!(a, b, "count={c}"),
                (Err(e), None) => {
                    // Exhaustion must report the same error fields and leave
                    // both readers at the same (unconsumed) position.
                    assert_eq!(e.requested, c);
                    assert_eq!(e.remaining, slow.remaining_bits());
                }
                (a, b) => panic!("readers disagree on exhaustion: {a:?} vs {b:?}"),
            }
            assert_eq!(word.remaining_bits(), slow.remaining_bits());
        }
    }
}

#[test]
fn bit_len_exhaustive_at_flush_boundaries() {
    // Every lead length that brackets both the 8-bit byte boundary and the
    // 64-bit accumulator flush boundary, crossed with every legal width.
    for lead in 0usize..=65 {
        for width in 0u8..=64 {
            let mut word = BitWriter::new();
            let mut slow = reference::SlowWriter::new();
            for _ in 0..lead {
                word.write_bits(1, 1);
                slow.write_bits(1, 1);
            }
            assert_eq!(word.bit_len(), lead);
            assert_eq!(word.byte_len(), lead.div_ceil(8));
            word.write_bits(u64::MAX, width);
            slow.write_bits(u64::MAX, width);
            assert_eq!(word.bit_len(), lead + usize::from(width));
            assert_eq!(word.byte_len(), (lead + usize::from(width)).div_ceil(8));
            assert_eq!(
                word.into_bytes(),
                slow.into_bytes(),
                "lead={lead} width={width}"
            );
        }
    }
}

#[test]
fn interleaved_widths_cross_boundaries_like_reference() {
    // A fixed adversarial width schedule that repeatedly straddles the
    // accumulator flush: wide-narrow alternation plus exact-fill widths.
    let widths: &[u8] = &[64, 1, 63, 2, 62, 31, 33, 7, 57, 8, 56, 16, 48, 5, 64, 64, 3];
    let mut word = BitWriter::new();
    let mut slow = reference::SlowWriter::new();
    for (i, &c) in widths.iter().enumerate() {
        let v = (i as u64).wrapping_mul(0x0123_4567_89AB_CDEF) | 1;
        word.write_bits(v, c);
        slow.write_bits(v, c);
        assert_eq!(word.bit_len(), slow.bit_len(), "after field {i}");
    }
    assert_eq!(word.into_bytes(), slow.into_bytes());
}

#[test]
fn write_run_and_fields_match_reference() {
    let mut rng = DetRng::seed_from_u64(0xFB);
    for _ in 0..CASES {
        let mut word = BitWriter::new();
        let mut slow = reference::SlowWriter::new();
        let lead = rng.gen_range(0u32..=9) as u8;
        word.write_bits(0x155, lead);
        slow.write_bits(0x155, lead);
        // A run of one repeated field...
        let (rv, rc, reps) = (
            rng.next_u64(),
            rng.gen_range(1u32..=64) as u8,
            rng.gen_range(0usize..100),
        );
        word.write_run(rv, rc, reps);
        for _ in 0..reps {
            slow.write_bits(rv, rc);
        }
        // ...then a uniform-width lane batch.
        let fc = rng.gen_range(1u32..=64) as u8;
        let lanes: Vec<u64> = (0..rng.gen_range(0usize..50))
            .map(|_| rng.next_u64())
            .collect();
        word.write_fields(&lanes, fc);
        for &v in &lanes {
            slow.write_bits(v, fc);
        }
        assert_eq!(word.bit_len(), slow.bit_len());
        assert_eq!(word.into_bytes(), slow.into_bytes());
    }
}

#[test]
fn pad_to_bytes_is_byte_exact() {
    let mut rng = DetRng::seed_from_u64(0xF8);
    for _ in 0..CASES {
        let n_fields = rng.gen_range(0usize..20);
        let mut w = BitWriter::new();
        for _ in 0..n_fields {
            let c = rng.gen_range(1u32..=16) as u8;
            w.write_bits(rng.next_u64(), c);
        }
        let extra = rng.gen_range(0usize..16);
        let target = w.bit_len().div_ceil(8) + extra;
        w.pad_to_bytes(target);
        assert_eq!(w.into_bytes().len(), target);
    }
}
