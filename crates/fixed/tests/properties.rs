//! Property-based tests for fixed-point formats and bit packing.

use age_fixed::{required_integer_bits, BitReader, BitWriter, Format};
use proptest::prelude::*;

/// Strategy producing a valid format: width 1..=32, integer bits 1..=40.
fn format_strategy() -> impl Strategy<Value = Format> {
    (1u8..=32, 1i16..=40).prop_map(|(width, n)| {
        let frac = i16::from(width) - n;
        Format::new(width, frac).expect("strategy produces valid formats")
    })
}

proptest! {
    #[test]
    fn quantize_never_leaves_raw_range(fmt in format_strategy(), x in -1e12f64..1e12) {
        let raw = fmt.quantize(x);
        prop_assert!(raw >= fmt.min_raw());
        prop_assert!(raw <= fmt.max_raw());
    }

    #[test]
    fn quantize_is_idempotent(fmt in format_strategy(), x in -1e9f64..1e9) {
        let once = fmt.round_trip(x);
        let twice = fmt.round_trip(once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn in_range_error_bounded_by_half_step(fmt in format_strategy(), t in 0.0f64..1.0) {
        // Pick x inside the representable range.
        let x = fmt.min_value() + t * (fmt.max_value() - fmt.min_value());
        let err = (fmt.round_trip(x) - x).abs();
        prop_assert!(err <= fmt.half_step() * (1.0 + 1e-9),
            "x={} err={} half_step={}", x, err, fmt.half_step());
    }

    #[test]
    fn bits_roundtrip(fmt in format_strategy(), seed in any::<u64>()) {
        // Derive an in-range raw value from the seed.
        let span = (fmt.max_raw() - fmt.min_raw()) as u64 + 1;
        let raw = fmt.min_raw() + (seed % span) as i64;
        prop_assert_eq!(fmt.from_bits(fmt.to_bits(raw)), raw);
    }

    #[test]
    fn required_bits_is_sufficient(x in -1e6f64..1e6) {
        let n = required_integer_bits(x, 40);
        // A format with n integer bits and plenty of width represents x
        // without saturating.
        let width = (n + 20).min(32);
        if let Ok(fmt) = Format::new(width, i16::from(width) - i16::from(n)) {
            let err = (fmt.round_trip(x) - x).abs();
            prop_assert!(err <= fmt.half_step() + 1e-9,
                "x={} n={} err={}", x, n, err);
        }
    }

    #[test]
    fn required_bits_is_minimal(x in -1e6f64..1e6) {
        let n = required_integer_bits(x, 40);
        if n > 1 {
            // One fewer integer bit must fail to cover x.
            let hi = f64::powi(2.0, i32::from(n) - 2);
            prop_assert!(x >= hi || x < -hi, "x={} n={}", x, n);
        }
    }

    #[test]
    fn writer_reader_roundtrip(fields in prop::collection::vec((any::<u64>(), 1u8..=64), 0..50)) {
        let mut w = BitWriter::new();
        for &(v, c) in &fields {
            w.write_bits(v, c);
        }
        let expected_bits: usize = fields.iter().map(|&(_, c)| usize::from(c)).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), expected_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, c) in &fields {
            let mask = if c == 64 { u64::MAX } else { (1u64 << c) - 1 };
            prop_assert_eq!(r.read_bits(c).unwrap(), v & mask);
        }
    }

    #[test]
    fn pad_to_bytes_is_byte_exact(fields in prop::collection::vec((any::<u64>(), 1u8..=16), 0..20), extra in 0usize..16) {
        let mut w = BitWriter::new();
        for &(v, c) in &fields {
            w.write_bits(v, c);
        }
        let target = w.bit_len().div_ceil(8) + extra;
        w.pad_to_bytes(target);
        prop_assert_eq!(w.into_bytes().len(), target);
    }
}
