//! Randomized property tests for fixed-point formats and bit packing,
//! driven by the workspace's deterministic PRNG (no external test deps).

use age_fixed::{required_integer_bits, BitReader, BitWriter, Format};
use age_telemetry::DetRng;

const CASES: usize = 512;

/// A valid random format: width 1..=32, integer bits 1..=40.
fn random_format(rng: &mut DetRng) -> Format {
    let width = rng.gen_range(1u32..=32) as u8;
    let n = rng.gen_range(1i64..=40) as i16;
    let frac = i16::from(width) - n;
    Format::new(width, frac).expect("generator produces valid formats")
}

#[test]
fn quantize_never_leaves_raw_range() {
    let mut rng = DetRng::seed_from_u64(0xF1);
    for _ in 0..CASES {
        let fmt = random_format(&mut rng);
        let x = rng.gen_range(-1e12f64..1e12);
        let raw = fmt.quantize(x);
        assert!(raw >= fmt.min_raw(), "{fmt:?} x={x} raw={raw}");
        assert!(raw <= fmt.max_raw(), "{fmt:?} x={x} raw={raw}");
    }
}

#[test]
fn quantize_is_idempotent() {
    let mut rng = DetRng::seed_from_u64(0xF2);
    for _ in 0..CASES {
        let fmt = random_format(&mut rng);
        let x = rng.gen_range(-1e9f64..1e9);
        let once = fmt.round_trip(x);
        let twice = fmt.round_trip(once);
        assert_eq!(once, twice, "{fmt:?} x={x}");
    }
}

#[test]
fn in_range_error_bounded_by_half_step() {
    let mut rng = DetRng::seed_from_u64(0xF3);
    for _ in 0..CASES {
        let fmt = random_format(&mut rng);
        let t = rng.gen_range(0.0f64..1.0);
        // Pick x inside the representable range.
        let x = fmt.min_value() + t * (fmt.max_value() - fmt.min_value());
        let err = (fmt.round_trip(x) - x).abs();
        assert!(
            err <= fmt.half_step() * (1.0 + 1e-9),
            "x={} err={} half_step={}",
            x,
            err,
            fmt.half_step()
        );
    }
}

#[test]
fn bits_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xF4);
    for _ in 0..CASES {
        let fmt = random_format(&mut rng);
        // Derive an in-range raw value from a random draw.
        let span = (fmt.max_raw() - fmt.min_raw()) as u64 + 1;
        let raw = fmt.min_raw() + (rng.next_u64() % span) as i64;
        assert_eq!(fmt.from_bits(fmt.to_bits(raw)), raw, "{fmt:?} raw={raw}");
    }
}

#[test]
fn required_bits_is_sufficient() {
    let mut rng = DetRng::seed_from_u64(0xF5);
    for _ in 0..CASES {
        let x = rng.gen_range(-1e6f64..1e6);
        let n = required_integer_bits(x, 40);
        // A format with n integer bits and plenty of width represents x
        // without saturating.
        let width = (n + 20).min(32);
        if let Ok(fmt) = Format::new(width, i16::from(width) - i16::from(n)) {
            let err = (fmt.round_trip(x) - x).abs();
            assert!(err <= fmt.half_step() + 1e-9, "x={x} n={n} err={err}");
        }
    }
}

#[test]
fn required_bits_is_minimal() {
    let mut rng = DetRng::seed_from_u64(0xF6);
    for _ in 0..CASES {
        let x = rng.gen_range(-1e6f64..1e6);
        let n = required_integer_bits(x, 40);
        if n > 1 {
            // One fewer integer bit must fail to cover x.
            let hi = f64::powi(2.0, i32::from(n) - 2);
            assert!(x >= hi || x < -hi, "x={x} n={n}");
        }
    }
}

#[test]
fn writer_reader_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xF7);
    for _ in 0..CASES {
        let n_fields = rng.gen_range(0usize..50);
        let fields: Vec<(u64, u8)> = (0..n_fields)
            .map(|_| (rng.next_u64(), rng.gen_range(1u32..=64) as u8))
            .collect();
        let mut w = BitWriter::new();
        for &(v, c) in &fields {
            w.write_bits(v, c);
        }
        let expected_bits: usize = fields.iter().map(|&(_, c)| usize::from(c)).sum();
        assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), expected_bits.div_ceil(8));
        let mut r = BitReader::new(&bytes);
        for &(v, c) in &fields {
            let mask = if c == 64 { u64::MAX } else { (1u64 << c) - 1 };
            assert_eq!(r.read_bits(c).unwrap(), v & mask);
        }
    }
}

#[test]
fn pad_to_bytes_is_byte_exact() {
    let mut rng = DetRng::seed_from_u64(0xF8);
    for _ in 0..CASES {
        let n_fields = rng.gen_range(0usize..20);
        let mut w = BitWriter::new();
        for _ in 0..n_fields {
            let c = rng.gen_range(1u32..=16) as u8;
            w.write_bits(rng.next_u64(), c);
        }
        let extra = rng.gen_range(0usize..16);
        let target = w.bit_len().div_ceil(8) + extra;
        w.pad_to_bytes(target);
        assert_eq!(w.into_bytes().len(), target);
    }
}
