//! Pins the MCU-profile contract for the span API: without the `audit`
//! feature, `Tracer` is a zero-sized no-op — no allocation, no recording —
//! even when tracing is force-enabled and a sink is installed. Runs only
//! under `--no-default-features` (the workspace's MCU build leg); with
//! `audit` on, the real tracer is covered by the unit tests in `span.rs`.
#![cfg(not(feature = "audit"))]

use std::sync::Arc;

use age_telemetry::alloc::{self, CountingAllocator};
use age_telemetry::{install_thread, set_trace_enabled, RecordingSink, Tracer};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[test]
fn tracer_is_a_zero_alloc_noop_without_audit() {
    // Adversarial setup: everything that would make the real tracer record.
    set_trace_enabled(true);
    let sink = Arc::new(RecordingSink::new());
    let _guard = install_thread(sink.clone());

    let mut tracer = Tracer::new("epi/Linear/AGE/r0.50");
    assert!(!tracer.is_enabled());
    assert_eq!(std::mem::size_of::<Tracer>(), 0);

    let before = alloc::snapshot();
    for i in 0..1_000u64 {
        tracer.begin("sequence", "sim", i * 10);
        tracer.begin("encode", "encode", i * 10 + 1);
        tracer.end(i * 10 + 3);
        tracer.end(i * 10 + 9);
    }
    let delta = alloc::snapshot().since(before);
    assert_eq!(delta.allocations, 0, "no-op tracer must not allocate");
    assert_eq!(delta.bytes, 0);

    set_trace_enabled(false);
    // Nothing reached the sink: record_span doesn't even exist without
    // `audit`, and record_batch was never called.
    assert!(sink.records().is_empty());
}
