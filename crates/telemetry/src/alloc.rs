//! A counting global allocator for allocation-regression tests and benches.
//!
//! The encode hot path claims to be allocation-free after warm-up (see
//! `age-core`'s `EncodeScratch`); that claim is only worth anything if it is
//! machine-checked. [`CountingAllocator`] wraps the system allocator and
//! counts every allocation and reallocation on **thread-local** counters, so
//! a test (or bench) can snapshot before and after a code region and assert
//! the delta — without interference from other test-harness threads.
//!
//! Deallocations are deliberately not counted: freeing reuses no budget we
//! care about, and the regression target is "no new heap traffic", which
//! alloc/realloc alone capture.
//!
//! # Examples
//!
//! ```ignore
//! use age_telemetry::alloc::{self, CountingAllocator};
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let before = alloc::snapshot();
//! hot_path();
//! let delta = alloc::snapshot().since(before);
//! assert_eq!(delta.allocations, 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // Const-initialized cells: reading them never allocates, so the
    // allocator cannot recurse into itself.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static ALLOCATED_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A `#[global_allocator]` that forwards to [`System`] while counting
/// allocations and allocated bytes per thread.
#[derive(Debug, Default)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// Creates the allocator (const, so it can back a `static`).
    pub const fn new() -> Self {
        CountingAllocator
    }
}

/// This thread's allocation counters at one instant; subtract two with
/// [`AllocSnapshot::since`] to measure a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Number of `alloc`/`alloc_zeroed`/`realloc` calls on this thread.
    pub allocations: u64,
    /// Total bytes those calls requested.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas accumulated since `earlier`.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations - earlier.allocations,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// Reads this thread's counters. Zero unless a [`CountingAllocator`] is
/// installed as the global allocator.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.with(Cell::get),
        bytes: ALLOCATED_BYTES.with(Cell::get),
    }
}

/// Bumps the counters; `try_with` so allocations during thread-local
/// teardown (where the keys are already destroyed) stay safe, if uncounted.
fn count(bytes: usize) {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
    let _ = ALLOCATED_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

// SAFETY: pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; the counters touch no allocator state.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (other tests in this crate
    // would be counted too); the end-to-end check lives in `age-core`'s
    // `tests/alloc.rs`, which owns its test binary's allocator.
    #[test]
    fn snapshot_deltas_subtract() {
        let a = AllocSnapshot {
            allocations: 3,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocations: 5,
            bytes: 164,
        };
        assert_eq!(
            b.since(a),
            AllocSnapshot {
                allocations: 2,
                bytes: 64
            }
        );
    }

    #[test]
    fn counting_is_per_thread() {
        count(8);
        count(8);
        let here = snapshot();
        assert!(here.allocations >= 2);
        let other = std::thread::spawn(snapshot).join().unwrap();
        assert_eq!(other.allocations, 0);
    }
}
