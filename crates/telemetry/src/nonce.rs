//! Run-wide nonce-uniqueness auditing.
//!
//! Every cipher in the workspace derives its nonce/IV deterministically
//! from the frame's sequence number, so "no nonce is ever reused" reduces
//! to: within one key epoch, no sequence number is sealed twice. This
//! module watches every [`WireRecord`] a run emits and hard-fails the run
//! if two sealed frames shared an (epoch, sequence) pair — the backstop
//! behind the sequence-reservation journal, and the proof that a sensor
//! rebooting *without* one is broken.
//!
//! Like the leakage audit, the state is an ordered map with a commutative,
//! associative merge: shards observed on different worker threads fold into
//! the same totals in any order, so reports are byte-identical at any
//! thread count.
//!
//! # Examples
//!
//! ```
//! use age_telemetry::NonceAudit;
//!
//! let mut audit = NonceAudit::new();
//! audit.observe("cell#0", 0);
//! audit.observe("cell#0", 1);
//! assert!(audit.is_clean());
//! audit.observe("cell#0", 0); // a reboot re-sealed sequence 0
//! assert!(!audit.is_clean());
//! assert_eq!(audit.violations()[0].sequence, 0);
//! ```

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::record::{BatchRecord, WireRecord};
use crate::sink::Sink;

/// One (epoch, sequence) pair that was sealed more than once — a reused
/// nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonceReuse {
    /// The key epoch both frames were sealed in.
    pub epoch: String,
    /// The sequence number (hence nonce) they shared.
    pub sequence: u64,
    /// How many frames were sealed under it.
    pub count: u64,
}

/// Counts sealed frames per (epoch, sequence) pair. Any count above 1 is a
/// confidentiality failure; [`NonceAudit::is_clean`] gates the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NonceAudit {
    seen: BTreeMap<(String, u64), u64>,
}

impl NonceAudit {
    /// An empty audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sealed frame.
    pub fn observe(&mut self, epoch: &str, sequence: u64) {
        *self.seen.entry((epoch.to_string(), sequence)).or_insert(0) += 1;
    }

    /// Records one sealed frame from a wire record. Records emitted before
    /// an epoch was set fall back to the stream label, so legacy streams
    /// still audit per-stream.
    pub fn observe_wire(&mut self, record: &WireRecord) {
        let epoch = if record.epoch.is_empty() {
            &record.label
        } else {
            &record.epoch
        };
        self.observe(epoch, record.seq);
    }

    /// Folds another shard in. Commutative and associative — counts add —
    /// so per-thread shards merge to the same totals in any order.
    pub fn merge(&mut self, other: &NonceAudit) {
        for ((epoch, sequence), count) in &other.seen {
            *self.seen.entry((epoch.clone(), *sequence)).or_insert(0) += count;
        }
    }

    /// Total sealed frames observed.
    pub fn frames(&self) -> u64 {
        self.seen.values().sum()
    }

    /// Distinct (epoch, sequence) pairs observed.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }

    /// Distinct epochs observed.
    pub fn epochs(&self) -> usize {
        let mut n = 0;
        let mut last: Option<&str> = None;
        for (epoch, _) in self.seen.keys() {
            if last != Some(epoch.as_str()) {
                n += 1;
                last = Some(epoch.as_str());
            }
        }
        n
    }

    /// Every reused nonce, in deterministic (epoch, sequence) order.
    pub fn violations(&self) -> Vec<NonceReuse> {
        self.seen
            .iter()
            .filter(|&(_, count)| *count > 1)
            .map(|((epoch, sequence), count)| NonceReuse {
                epoch: epoch.clone(),
                sequence: *sequence,
                count: *count,
            })
            .collect()
    }

    /// `true` when no nonce was reused (the run may pass).
    pub fn is_clean(&self) -> bool {
        self.seen.values().all(|&count| count <= 1)
    }
}

impl std::fmt::Display for NonceAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} sealed frames, {} distinct (epoch, seq) pairs, {} epochs",
            self.frames(),
            self.distinct(),
            self.epochs()
        )?;
        let violations = self.violations();
        if violations.is_empty() {
            writeln!(f, "  all nonces unique")
        } else {
            for v in violations {
                writeln!(
                    f,
                    "  NONCE REUSED: epoch={} seq={} sealed {} times",
                    v.epoch, v.sequence, v.count
                )?;
            }
            Ok(())
        }
    }
}

/// A [`Sink`] accumulating a [`NonceAudit`] from every wire record emitted
/// anywhere in the process (batch records are ignored). Install it
/// (globally, or per worker thread) for the duration of a run, then
/// [`take`](Self::take) and check [`NonceAudit::is_clean`].
#[derive(Default)]
pub struct NonceAuditSink {
    audit: Mutex<NonceAudit>,
}

impl NonceAuditSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the accumulated audit, leaving the sink empty.
    pub fn take(&self) -> NonceAudit {
        match self.audit.lock() {
            Ok(mut audit) => std::mem::take(&mut *audit),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }
}

impl Sink for NonceAuditSink {
    fn record_batch(&self, _record: &BatchRecord) {}

    fn record_wire(&self, record: &WireRecord) {
        if let Ok(mut audit) = self.audit.lock() {
            audit.observe_wire(record);
        }
    }

    fn flush(&self) {}
}

/// Allocates the epoch string for one cell run: `"{cell}#{n}"`, where `n`
/// counts prior runs of the *same* cell identity in this process. Two
/// concurrent runs of byte-identical cells may swap numbers, but since
/// identical cells emit identical sequence sets the merged audit is
/// unaffected — which is what keeps reports byte-identical at any thread
/// count.
pub fn begin_epoch(cell: &str) -> String {
    let runs = epoch_runs();
    let mut runs = match runs.lock() {
        Ok(runs) => runs,
        Err(poisoned) => poisoned.into_inner(),
    };
    let n = runs.entry(cell.to_string()).or_insert(0);
    let epoch = format!("{cell}#{n}");
    *n += 1;
    epoch
}

/// Forgets all epoch run counters, so the next [`begin_epoch`] per cell
/// starts at `#0` again. Determinism tests call this between two runs they
/// intend to compare byte-for-byte.
pub fn reset_epoch_counters() {
    if let Some(runs) = EPOCH_RUNS.get() {
        match runs.lock() {
            Ok(mut runs) => runs.clear(),
            Err(poisoned) => poisoned.into_inner().clear(),
        }
    }
}

static EPOCH_RUNS: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();

fn epoch_runs() -> &'static Mutex<BTreeMap<String, u64>> {
    EPOCH_RUNS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A set of `u64` sequence numbers stored as sorted, disjoint, inclusive
/// runs.
///
/// Fleet traffic is overwhelmingly monotone — each sensor seals sequence
/// `n + 1` right after `n` — so the common case is *extending the last run
/// in place*, which touches no heap once the run vector has its working
/// capacity. That is what lets a gateway shard audit per-sensor sequence
/// uniqueness for millions of frames with zero steady-state allocations,
/// where the string-keyed [`NonceAudit`] would allocate per frame.
///
/// Out-of-order arrivals (a replay window tolerates up to 64 of skew)
/// create short-lived holes; inserts coalesce neighbouring runs as the
/// holes fill, so the vector stays tiny.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeqSet {
    runs: Vec<(u64, u64)>,
}

impl SeqSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `seq`, returning `true` if it was newly added and `false`
    /// if it was already present (a duplicate — for nonce auditing, a
    /// reuse). Appending one past the highest run extends it in place
    /// without allocating.
    pub fn insert(&mut self, seq: u64) -> bool {
        let idx = self.runs.partition_point(|&(_, end)| end < seq);
        if idx < self.runs.len() && self.runs[idx].0 <= seq {
            return false;
        }
        let glue_left = idx > 0 && self.runs[idx - 1].1.checked_add(1) == Some(seq);
        let glue_right = idx < self.runs.len() && seq.checked_add(1) == Some(self.runs[idx].0);
        match (glue_left, glue_right) {
            (true, true) => {
                self.runs[idx - 1].1 = self.runs[idx].1;
                self.runs.remove(idx);
            }
            (true, false) => self.runs[idx - 1].1 = seq,
            (false, true) => self.runs[idx].0 = seq,
            (false, false) => self.runs.insert(idx, (seq, seq)),
        }
        true
    }

    /// Whether `seq` is in the set.
    pub fn contains(&self, seq: u64) -> bool {
        let idx = self.runs.partition_point(|&(_, end)| end < seq);
        idx < self.runs.len() && self.runs[idx].0 <= seq
    }

    /// Number of sequences covered (saturating at `u64::MAX`).
    pub fn count(&self) -> u64 {
        self.runs.iter().fold(0u64, |acc, &(start, end)| {
            acc.saturating_add((end - start).saturating_add(1))
        })
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The sorted, disjoint, inclusive runs.
    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// The set union. Used by the commutative fleet merge.
    pub fn union(a: &SeqSet, b: &SeqSet) -> SeqSet {
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(a.runs.len() + b.runs.len());
        let (mut i, mut j) = (0, 0);
        while i < a.runs.len() || j < b.runs.len() {
            let take_a = j >= b.runs.len() || (i < a.runs.len() && a.runs[i].0 <= b.runs[j].0);
            let next = if take_a {
                let r = a.runs[i];
                i += 1;
                r
            } else {
                let r = b.runs[j];
                j += 1;
                r
            };
            match out.last_mut() {
                Some(last) if next.0 <= last.1.saturating_add(1) => last.1 = last.1.max(next.1),
                _ => out.push(next),
            }
        }
        SeqSet { runs: out }
    }

    /// The set intersection. A non-empty intersection between two shards'
    /// per-sensor sets is the cross-shard reuse signature the fleet merge
    /// records as a violation.
    pub fn intersection(a: &SeqSet, b: &SeqSet) -> SeqSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.runs.len() && j < b.runs.len() {
            let lo = a.runs[i].0.max(b.runs[j].0);
            let hi = a.runs[i].1.min(b.runs[j].1);
            if lo <= hi {
                out.push((lo, hi));
            }
            if a.runs[i].1 < b.runs[j].1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        SeqSet { runs: out }
    }
}

/// One run of sequence numbers a fleet sensor sealed (or a gateway
/// accepted) more than once within one key epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetNonceReuse {
    /// The sensor whose session reused sequence numbers.
    pub sensor_id: u64,
    /// The key epoch the reuse happened in.
    pub epoch: u64,
    /// First reused sequence number of the run.
    pub first: u64,
    /// Last reused sequence number of the run (inclusive).
    pub last: u64,
}

/// Run-wide nonce-uniqueness auditor keyed by **numeric sensor id**, built
/// for fleet-scale ingest.
///
/// The string-keyed [`NonceAudit`] allocates an epoch `String` and a map
/// node per observed frame, which is fine for a sweep of a few thousand
/// frames but not for a gateway shard ingesting millions. This auditor
/// keys per-sensor [`SeqSet`] interval sets by `(sensor id, epoch)`:
/// observing a sensor's next monotone sequence extends the top run in
/// place, so the steady-state ingest path performs **zero allocations**.
///
/// [`merge`](Self::merge) is commutative and associative (pure interval
/// set algebra: union of the seen-sets, plus every pairwise intersection
/// recorded as reuse), so per-shard auditors fold into byte-identical
/// fleet state at any shard or thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetNonceAudit {
    seen: BTreeMap<(u64, u64), SeqSet>,
    reused: BTreeMap<(u64, u64), SeqSet>,
    frames: u64,
}

impl FleetNonceAudit {
    /// An empty audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sealed (or accepted) frame for `(sensor_id, epoch)`.
    /// A sequence observed twice within one epoch is recorded as a reuse.
    pub fn observe(&mut self, sensor_id: u64, epoch: u64, sequence: u64) {
        self.frames += 1;
        if !self
            .seen
            .entry((sensor_id, epoch))
            .or_default()
            .insert(sequence)
        {
            self.reused
                .entry((sensor_id, epoch))
                .or_default()
                .insert(sequence);
        }
    }

    /// Folds another audit in. Commutative and associative: the seen-sets
    /// union, and any overlap between two audits' per-sensor sets — the
    /// same `(sensor, epoch, sequence)` observed on both sides — is
    /// recorded as reuse, exactly as if the frames had been observed by a
    /// single auditor.
    pub fn merge(&mut self, other: &FleetNonceAudit) {
        self.frames += other.frames;
        for (key, set) in &other.seen {
            match self.seen.get_mut(key) {
                Some(mine) => {
                    let overlap = SeqSet::intersection(mine, set);
                    if !overlap.is_empty() {
                        let r = self.reused.entry(*key).or_default();
                        *r = SeqSet::union(r, &overlap);
                    }
                    *mine = SeqSet::union(mine, set);
                }
                None => {
                    self.seen.insert(*key, set.clone());
                }
            }
        }
        for (key, set) in &other.reused {
            let r = self.reused.entry(*key).or_default();
            *r = SeqSet::union(r, set);
        }
    }

    /// Total frames observed.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Distinct sensor ids observed.
    pub fn sensors(&self) -> usize {
        let mut n = 0;
        let mut last = None;
        for &(sensor, _) in self.seen.keys() {
            if last != Some(sensor) {
                n += 1;
                last = Some(sensor);
            }
        }
        n
    }

    /// Distinct `(sensor, epoch)` cells observed. A static fleet shows
    /// exactly one cell per sensor; a rekeying fleet shows one per
    /// epoch a sensor sealed under, so `cells() > sensors()` is the
    /// audit-side fingerprint that rotations actually happened.
    pub fn cells(&self) -> usize {
        self.seen.len()
    }

    /// Total distinct `(sensor, epoch, sequence)` triples observed.
    pub fn distinct(&self) -> u64 {
        self.seen
            .values()
            .fold(0u64, |acc, set| acc.saturating_add(set.count()))
    }

    /// `true` when no sequence was observed twice for any sensor/epoch.
    pub fn is_clean(&self) -> bool {
        self.reused.values().all(SeqSet::is_empty)
    }

    /// Every reused sequence run, in `(sensor, epoch, sequence)` order.
    /// Runs keep the report bounded even if a whole session was replayed.
    pub fn violations(&self) -> Vec<FleetNonceReuse> {
        self.reused
            .iter()
            .flat_map(|(&(sensor_id, epoch), set)| {
                set.runs()
                    .iter()
                    .map(move |&(first, last)| FleetNonceReuse {
                        sensor_id,
                        epoch,
                        first,
                        last,
                    })
            })
            .collect()
    }
}

impl std::fmt::Display for FleetNonceAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} frames from {} sensors, {} distinct (sensor, epoch, seq) triples",
            self.frames(),
            self.sensors(),
            self.distinct()
        )?;
        let violations = self.violations();
        if violations.is_empty() {
            writeln!(f, "  all per-sensor nonces unique")
        } else {
            for v in violations {
                writeln!(
                    f,
                    "  NONCE REUSED: sensor={} epoch={} seq={}..={}",
                    v.sensor_id, v.epoch, v.first, v.last
                )?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(epoch: &str, seq: u64) -> WireRecord {
        WireRecord {
            label: "epi/Linear/AGE/r0.50".into(),
            encoder: "AGE".into(),
            seq,
            event: 0,
            wire_bytes: 96,
            epoch: epoch.into(),
            virtual_time: 0,
        }
    }

    #[test]
    fn unique_nonces_are_clean() {
        let mut audit = NonceAudit::new();
        for seq in 0..100 {
            audit.observe("a#0", seq);
            audit.observe("b#0", seq); // same seq, different epoch: fine
        }
        assert!(audit.is_clean());
        assert_eq!(audit.frames(), 200);
        assert_eq!(audit.distinct(), 200);
        assert_eq!(audit.epochs(), 2);
        assert!(audit.to_string().contains("all nonces unique"));
    }

    #[test]
    fn a_reused_pair_is_a_violation() {
        let mut audit = NonceAudit::new();
        audit.observe("a#0", 7);
        audit.observe("a#0", 7);
        audit.observe("a#0", 7);
        assert!(!audit.is_clean());
        let violations = audit.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].sequence, 7);
        assert_eq!(violations[0].count, 3);
        assert!(audit.to_string().contains("NONCE REUSED"));
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = NonceAudit::new();
        let mut b = NonceAudit::new();
        for seq in 0..50 {
            a.observe("x#0", seq);
            b.observe("x#0", seq + 25); // overlap [25, 50): reuse
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.violations().len(), 25);
        assert_eq!(format!("{ab}"), format!("{ba}"));
    }

    #[test]
    fn sink_accumulates_wire_records() {
        let sink = NonceAuditSink::new();
        sink.record_wire(&wire("cell#0", 0));
        sink.record_wire(&wire("cell#0", 1));
        sink.record_wire(&wire("cell#0", 1));
        let audit = sink.take();
        assert!(!audit.is_clean());
        assert!(sink.take().is_clean(), "take leaves the sink empty");
    }

    #[test]
    fn records_without_an_epoch_fall_back_to_the_label() {
        let mut audit = NonceAudit::new();
        audit.observe_wire(&wire("", 3));
        audit.observe_wire(&wire("", 3));
        assert_eq!(audit.violations()[0].epoch, "epi/Linear/AGE/r0.50");
    }

    #[test]
    fn epoch_allocation_counts_reruns_per_cell() {
        reset_epoch_counters();
        assert_eq!(begin_epoch("cellA"), "cellA#0");
        assert_eq!(begin_epoch("cellB"), "cellB#0");
        assert_eq!(begin_epoch("cellA"), "cellA#1");
        reset_epoch_counters();
        assert_eq!(begin_epoch("cellA"), "cellA#0");
    }

    #[test]
    fn seq_set_coalesces_runs_and_rejects_duplicates() {
        let mut set = SeqSet::new();
        // Monotone appends extend a single run.
        for seq in 0..100u64 {
            assert!(set.insert(seq), "seq {seq} should be new");
        }
        assert_eq!(set.runs(), &[(0, 99)]);
        assert_eq!(set.count(), 100);
        // Duplicates anywhere in the run are rejected.
        assert!(!set.insert(0));
        assert!(!set.insert(50));
        assert!(!set.insert(99));
        // A gap opens a new run; filling it coalesces back to one.
        assert!(set.insert(102));
        assert_eq!(set.runs(), &[(0, 99), (102, 102)]);
        assert!(set.insert(100));
        assert!(set.insert(101));
        assert_eq!(set.runs(), &[(0, 102)]);
        assert!(set.contains(101));
        assert!(!set.contains(103));
    }

    #[test]
    fn seq_set_handles_u64_extremes_without_overflow() {
        let mut set = SeqSet::new();
        assert!(set.insert(u64::MAX));
        assert!(set.insert(u64::MAX - 1));
        assert!(!set.insert(u64::MAX));
        assert!(set.insert(0));
        assert_eq!(set.runs(), &[(0, 0), (u64::MAX - 1, u64::MAX)]);
        assert_eq!(set.count(), 3);
    }

    #[test]
    fn seq_set_union_and_intersection_are_exact() {
        let mut a = SeqSet::new();
        let mut b = SeqSet::new();
        for seq in [1u64, 2, 3, 10, 11, 20] {
            a.insert(seq);
        }
        for seq in [3u64, 4, 11, 12, 30] {
            b.insert(seq);
        }
        let union = SeqSet::union(&a, &b);
        assert_eq!(union.runs(), &[(1, 4), (10, 12), (20, 20), (30, 30)]);
        let both = SeqSet::intersection(&a, &b);
        assert_eq!(both.runs(), &[(3, 3), (11, 11)]);
        // Union/intersection commute.
        assert_eq!(union, SeqSet::union(&b, &a));
        assert_eq!(both, SeqSet::intersection(&b, &a));
    }

    #[test]
    fn fleet_audit_is_clean_on_unique_sequences() {
        let mut audit = FleetNonceAudit::new();
        for sensor in 0..10u64 {
            for seq in 0..50u64 {
                audit.observe(sensor, 0, seq);
            }
        }
        assert!(audit.is_clean());
        assert_eq!(audit.frames(), 500);
        assert_eq!(audit.sensors(), 10);
        assert_eq!(audit.distinct(), 500);
        assert!(audit.to_string().contains("all per-sensor nonces unique"));
    }

    #[test]
    fn fleet_audit_catches_reuse_within_and_across_epochs() {
        let mut audit = FleetNonceAudit::new();
        audit.observe(7, 0, 3);
        audit.observe(7, 0, 3); // reuse
        audit.observe(7, 1, 3); // new epoch: fine
        audit.observe(8, 0, 3); // other sensor: fine
        assert!(!audit.is_clean());
        let violations = audit.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            (
                violations[0].sensor_id,
                violations[0].epoch,
                violations[0].first
            ),
            (7, 0, 3)
        );
        assert!(audit.to_string().contains("NONCE REUSED: sensor=7"));
    }

    #[test]
    fn fleet_merge_is_commutative_and_matches_single_observer() {
        // Split one fleet's frames across two "shards" (disjoint sensors)
        // plus a deliberate cross-shard overlap for sensor 5.
        let mut a = FleetNonceAudit::new();
        let mut b = FleetNonceAudit::new();
        let mut whole = FleetNonceAudit::new();
        for seq in 0..40u64 {
            a.observe(1, 0, seq);
            whole.observe(1, 0, seq);
            b.observe(2, 0, seq);
            whole.observe(2, 0, seq);
        }
        for seq in 0..10u64 {
            a.observe(5, 0, seq);
            whole.observe(5, 0, seq);
            b.observe(5, 0, seq + 5); // [5, 10) seen by both
            whole.observe(5, 0, seq + 5);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
        assert!(!ab.is_clean());
        let violations = ab.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!((violations[0].first, violations[0].last), (5, 9));
        // Three-way associativity: ((a+b)+c) == (a+(b+c)).
        let mut c = FleetNonceAudit::new();
        c.observe(5, 0, 7); // overlaps both halves
        let mut abc1 = ab.clone();
        abc1.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut abc2 = a.clone();
        abc2.merge(&bc);
        assert_eq!(abc1, abc2);
    }
}
