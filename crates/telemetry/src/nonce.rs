//! Run-wide nonce-uniqueness auditing.
//!
//! Every cipher in the workspace derives its nonce/IV deterministically
//! from the frame's sequence number, so "no nonce is ever reused" reduces
//! to: within one key epoch, no sequence number is sealed twice. This
//! module watches every [`WireRecord`] a run emits and hard-fails the run
//! if two sealed frames shared an (epoch, sequence) pair — the backstop
//! behind the sequence-reservation journal, and the proof that a sensor
//! rebooting *without* one is broken.
//!
//! Like the leakage audit, the state is an ordered map with a commutative,
//! associative merge: shards observed on different worker threads fold into
//! the same totals in any order, so reports are byte-identical at any
//! thread count.
//!
//! # Examples
//!
//! ```
//! use age_telemetry::NonceAudit;
//!
//! let mut audit = NonceAudit::new();
//! audit.observe("cell#0", 0);
//! audit.observe("cell#0", 1);
//! assert!(audit.is_clean());
//! audit.observe("cell#0", 0); // a reboot re-sealed sequence 0
//! assert!(!audit.is_clean());
//! assert_eq!(audit.violations()[0].sequence, 0);
//! ```

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::record::{BatchRecord, WireRecord};
use crate::sink::Sink;

/// One (epoch, sequence) pair that was sealed more than once — a reused
/// nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonceReuse {
    /// The key epoch both frames were sealed in.
    pub epoch: String,
    /// The sequence number (hence nonce) they shared.
    pub sequence: u64,
    /// How many frames were sealed under it.
    pub count: u64,
}

/// Counts sealed frames per (epoch, sequence) pair. Any count above 1 is a
/// confidentiality failure; [`NonceAudit::is_clean`] gates the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NonceAudit {
    seen: BTreeMap<(String, u64), u64>,
}

impl NonceAudit {
    /// An empty audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sealed frame.
    pub fn observe(&mut self, epoch: &str, sequence: u64) {
        *self.seen.entry((epoch.to_string(), sequence)).or_insert(0) += 1;
    }

    /// Records one sealed frame from a wire record. Records emitted before
    /// an epoch was set fall back to the stream label, so legacy streams
    /// still audit per-stream.
    pub fn observe_wire(&mut self, record: &WireRecord) {
        let epoch = if record.epoch.is_empty() {
            &record.label
        } else {
            &record.epoch
        };
        self.observe(epoch, record.seq);
    }

    /// Folds another shard in. Commutative and associative — counts add —
    /// so per-thread shards merge to the same totals in any order.
    pub fn merge(&mut self, other: &NonceAudit) {
        for ((epoch, sequence), count) in &other.seen {
            *self.seen.entry((epoch.clone(), *sequence)).or_insert(0) += count;
        }
    }

    /// Total sealed frames observed.
    pub fn frames(&self) -> u64 {
        self.seen.values().sum()
    }

    /// Distinct (epoch, sequence) pairs observed.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }

    /// Distinct epochs observed.
    pub fn epochs(&self) -> usize {
        let mut n = 0;
        let mut last: Option<&str> = None;
        for (epoch, _) in self.seen.keys() {
            if last != Some(epoch.as_str()) {
                n += 1;
                last = Some(epoch.as_str());
            }
        }
        n
    }

    /// Every reused nonce, in deterministic (epoch, sequence) order.
    pub fn violations(&self) -> Vec<NonceReuse> {
        self.seen
            .iter()
            .filter(|&(_, count)| *count > 1)
            .map(|((epoch, sequence), count)| NonceReuse {
                epoch: epoch.clone(),
                sequence: *sequence,
                count: *count,
            })
            .collect()
    }

    /// `true` when no nonce was reused (the run may pass).
    pub fn is_clean(&self) -> bool {
        self.seen.values().all(|&count| count <= 1)
    }
}

impl std::fmt::Display for NonceAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} sealed frames, {} distinct (epoch, seq) pairs, {} epochs",
            self.frames(),
            self.distinct(),
            self.epochs()
        )?;
        let violations = self.violations();
        if violations.is_empty() {
            writeln!(f, "  all nonces unique")
        } else {
            for v in violations {
                writeln!(
                    f,
                    "  NONCE REUSED: epoch={} seq={} sealed {} times",
                    v.epoch, v.sequence, v.count
                )?;
            }
            Ok(())
        }
    }
}

/// A [`Sink`] accumulating a [`NonceAudit`] from every wire record emitted
/// anywhere in the process (batch records are ignored). Install it
/// (globally, or per worker thread) for the duration of a run, then
/// [`take`](Self::take) and check [`NonceAudit::is_clean`].
#[derive(Default)]
pub struct NonceAuditSink {
    audit: Mutex<NonceAudit>,
}

impl NonceAuditSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the accumulated audit, leaving the sink empty.
    pub fn take(&self) -> NonceAudit {
        match self.audit.lock() {
            Ok(mut audit) => std::mem::take(&mut *audit),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }
}

impl Sink for NonceAuditSink {
    fn record_batch(&self, _record: &BatchRecord) {}

    fn record_wire(&self, record: &WireRecord) {
        if let Ok(mut audit) = self.audit.lock() {
            audit.observe_wire(record);
        }
    }

    fn flush(&self) {}
}

/// Allocates the epoch string for one cell run: `"{cell}#{n}"`, where `n`
/// counts prior runs of the *same* cell identity in this process. Two
/// concurrent runs of byte-identical cells may swap numbers, but since
/// identical cells emit identical sequence sets the merged audit is
/// unaffected — which is what keeps reports byte-identical at any thread
/// count.
pub fn begin_epoch(cell: &str) -> String {
    let runs = epoch_runs();
    let mut runs = match runs.lock() {
        Ok(runs) => runs,
        Err(poisoned) => poisoned.into_inner(),
    };
    let n = runs.entry(cell.to_string()).or_insert(0);
    let epoch = format!("{cell}#{n}");
    *n += 1;
    epoch
}

/// Forgets all epoch run counters, so the next [`begin_epoch`] per cell
/// starts at `#0` again. Determinism tests call this between two runs they
/// intend to compare byte-for-byte.
pub fn reset_epoch_counters() {
    if let Some(runs) = EPOCH_RUNS.get() {
        match runs.lock() {
            Ok(mut runs) => runs.clear(),
            Err(poisoned) => poisoned.into_inner().clear(),
        }
    }
}

static EPOCH_RUNS: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();

fn epoch_runs() -> &'static Mutex<BTreeMap<String, u64>> {
    EPOCH_RUNS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(epoch: &str, seq: u64) -> WireRecord {
        WireRecord {
            label: "epi/Linear/AGE/r0.50".into(),
            encoder: "AGE".into(),
            seq,
            event: 0,
            wire_bytes: 96,
            epoch: epoch.into(),
            virtual_time: 0,
        }
    }

    #[test]
    fn unique_nonces_are_clean() {
        let mut audit = NonceAudit::new();
        for seq in 0..100 {
            audit.observe("a#0", seq);
            audit.observe("b#0", seq); // same seq, different epoch: fine
        }
        assert!(audit.is_clean());
        assert_eq!(audit.frames(), 200);
        assert_eq!(audit.distinct(), 200);
        assert_eq!(audit.epochs(), 2);
        assert!(audit.to_string().contains("all nonces unique"));
    }

    #[test]
    fn a_reused_pair_is_a_violation() {
        let mut audit = NonceAudit::new();
        audit.observe("a#0", 7);
        audit.observe("a#0", 7);
        audit.observe("a#0", 7);
        assert!(!audit.is_clean());
        let violations = audit.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].sequence, 7);
        assert_eq!(violations[0].count, 3);
        assert!(audit.to_string().contains("NONCE REUSED"));
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = NonceAudit::new();
        let mut b = NonceAudit::new();
        for seq in 0..50 {
            a.observe("x#0", seq);
            b.observe("x#0", seq + 25); // overlap [25, 50): reuse
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.violations().len(), 25);
        assert_eq!(format!("{ab}"), format!("{ba}"));
    }

    #[test]
    fn sink_accumulates_wire_records() {
        let sink = NonceAuditSink::new();
        sink.record_wire(&wire("cell#0", 0));
        sink.record_wire(&wire("cell#0", 1));
        sink.record_wire(&wire("cell#0", 1));
        let audit = sink.take();
        assert!(!audit.is_clean());
        assert!(sink.take().is_clean(), "take leaves the sink empty");
    }

    #[test]
    fn records_without_an_epoch_fall_back_to_the_label() {
        let mut audit = NonceAudit::new();
        audit.observe_wire(&wire("", 3));
        audit.observe_wire(&wire("", 3));
        assert_eq!(audit.violations()[0].epoch, "epi/Linear/AGE/r0.50");
    }

    #[test]
    fn epoch_allocation_counts_reruns_per_cell() {
        reset_epoch_counters();
        assert_eq!(begin_epoch("cellA"), "cellA#0");
        assert_eq!(begin_epoch("cellB"), "cellB#0");
        assert_eq!(begin_epoch("cellA"), "cellA#1");
        reset_epoch_counters();
        assert_eq!(begin_epoch("cellA"), "cellA#0");
    }
}
