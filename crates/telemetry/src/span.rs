//! Lightweight stage timing for instrumented pipelines.
//!
//! [`Stopwatch`] is the span primitive the encoder uses: start it once per
//! batch, call [`lap`](Stopwatch::lap) at each stage boundary, and store the
//! returned nanoseconds into a
//! [`StageTimings`](crate::record::StageTimings). It honors the per-thread
//! [`crate::sink::timings_enabled`] switch by reporting 0
//! for every lap when timing is off, which keeps determinism tests
//! byte-stable without branching at every call site.

use std::time::Instant;

use crate::sink::timings_enabled;

/// Measures successive stage durations within one batch.
#[derive(Debug)]
pub struct Stopwatch {
    last: Option<Instant>,
}

impl Stopwatch {
    /// Starts timing now, or returns an inert stopwatch if wall-clock
    /// timings are disabled on this thread.
    pub fn start() -> Self {
        Stopwatch {
            last: timings_enabled().then(Instant::now),
        }
    }

    /// Nanoseconds since the previous lap (or since start), saturating at
    /// `u64::MAX`; resets the lap point. Always 0 when inert.
    pub fn lap(&mut self) -> u64 {
        match self.last {
            None => 0,
            Some(prev) => {
                let now = Instant::now();
                self.last = Some(now);
                u64::try_from(now.duration_since(prev).as_nanos()).unwrap_or(u64::MAX)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::set_timings_enabled;

    #[test]
    fn laps_measure_successive_intervals() {
        let mut sw = Stopwatch::start();
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc = acc.wrapping_add(1);
        }
        std::hint::black_box(acc);
        let first = sw.lap();
        let second = sw.lap();
        // Both laps are real measurements; the second covers almost no work.
        assert!(first > 0 || second > 0 || cfg!(miri));
    }

    #[test]
    fn disabled_timings_make_stopwatch_inert() {
        set_timings_enabled(false);
        let mut sw = Stopwatch::start();
        std::thread::yield_now();
        assert_eq!(sw.lap(), 0);
        assert_eq!(sw.lap(), 0);
        set_timings_enabled(true);
    }
}
