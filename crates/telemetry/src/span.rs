//! Stage timing and hierarchical spans for instrumented pipelines.
//!
//! Two span primitives live here, measuring two different clocks:
//!
//! - [`Stopwatch`] measures **wall-clock** stage durations: start it once
//!   per batch, call [`lap`](Stopwatch::lap) at each stage boundary, and
//!   store the returned nanoseconds into a
//!   [`StageTimings`](crate::record::StageTimings). It honors the
//!   per-thread [`crate::sink::timings_enabled`] switch by reporting 0 for
//!   every lap when timing is off, which keeps determinism tests
//!   byte-stable without branching at every call site.
//! - [`Tracer`] records **virtual-clock** spans: the caller (the
//!   simulator's runner) owns a deterministic clock and passes explicit
//!   timestamps to [`begin`](Tracer::begin)/[`end`](Tracer::end); closed
//!   spans are routed to the installed [`Sink`](crate::sink::Sink) as
//!   [`SpanEvent`]s for Chrome-trace export. Because the timestamps are
//!   virtual, traces are byte-identical across runs and thread counts —
//!   the opposite trade-off from `Stopwatch`, which is real but noisy.
//!
//! Without the `audit` feature, `Tracer` compiles to a zero-sized no-op
//! with the same method signatures, so MCU-profile builds pay nothing (the
//! `span_noop` integration test pins this with a counting allocator).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::sink::timings_enabled;

/// Measures successive stage durations within one batch.
#[derive(Debug)]
pub struct Stopwatch {
    last: Option<Instant>,
}

impl Stopwatch {
    /// Starts timing now, or returns an inert stopwatch if wall-clock
    /// timings are disabled on this thread.
    pub fn start() -> Self {
        Stopwatch {
            last: timings_enabled().then(Instant::now),
        }
    }

    /// Nanoseconds since the previous lap (or since start), saturating at
    /// `u64::MAX`; resets the lap point. Always 0 when inert.
    pub fn lap(&mut self) -> u64 {
        match self.last {
            None => 0,
            Some(prev) => {
                let now = Instant::now();
                self.last = Some(now);
                saturate_ns(now.duration_since(prev).as_nanos())
            }
        }
    }
}

/// Clamps a 128-bit nanosecond count into the `u64` a
/// [`StageTimings`](crate::record::StageTimings) field can hold. Split out
/// of [`Stopwatch::lap`] so the saturation path is testable (a real lap
/// cannot span 585 years).
fn saturate_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

/// Process-wide switch for virtual-time span collection. Off by default:
/// audits install sinks without wanting traces, and span emission allocates
/// (span names are owned). `repro --trace` turns it on for the run.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables span collection process-wide. Takes effect for
/// tracers constructed afterwards.
pub fn set_trace_enabled(enabled: bool) {
    TRACE_ENABLED.store(enabled, Ordering::Release);
}

/// Whether span collection is enabled (see [`set_trace_enabled`]).
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Acquire)
}

/// One closed virtual-time span, as delivered to
/// [`Sink::record_span`](crate::sink::Sink::record_span).
///
/// `track` identifies the stream (sweep cell) the span belongs to — an
/// FNV-1a hash of the tracer's label, stable across runs and thread counts,
/// so spans from concurrently-running cells never interleave on one
/// timeline. A span with `cat == "meta"` is the track's name announcement
/// (emitted once per tracer) rather than a timed region.
#[cfg(feature = "audit")]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (`"sequence"`, `"encode"`, `"attempt"`, …); for meta
    /// events, the human-readable track label.
    pub name: String,
    /// Category, used for Chrome-trace coloring (`"sim"`, `"encode"`,
    /// `"crypto"`, `"link"`, or `"meta"`).
    pub cat: &'static str,
    /// Stream identity: FNV-1a of the tracer label.
    pub track: u64,
    /// Virtual start time in simulated microseconds.
    pub start_us: u64,
    /// Virtual duration in simulated microseconds.
    pub dur_us: u64,
    /// Nesting depth at which the span was opened (0 = top level).
    pub depth: u32,
}

/// Records a nested stack of virtual-time spans for one stream and emits
/// each span to the installed sink when it closes.
///
/// Construction snapshots [`trace_enabled`] and
/// [`sink::active`](crate::sink::active); a disabled tracer's methods are
/// early-return no-ops, so per-sequence instrumentation costs two branches
/// when tracing is off.
#[cfg(feature = "audit")]
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    track: u64,
    stack: Vec<(String, &'static str, u64)>,
}

#[cfg(feature = "audit")]
impl Tracer {
    /// Creates a tracer for the stream named `label` and announces the
    /// track to the sink (a `cat == "meta"` span), if tracing is enabled.
    pub fn new(label: &str) -> Self {
        let enabled = trace_enabled() && crate::sink::active();
        let tracer = Tracer {
            enabled,
            track: fnv1a(label),
            stack: Vec::new(),
        };
        if enabled {
            crate::sink::emit_span(&SpanEvent {
                name: label.to_string(),
                cat: "meta",
                track: tracer.track,
                start_us: 0,
                dur_us: 0,
                depth: 0,
            });
        }
        tracer
    }

    /// Whether this tracer is actually recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span at virtual time `now_us`. Spans nest: each `begin`
    /// must be matched by an [`end`](Self::end), innermost first.
    pub fn begin(&mut self, name: &str, cat: &'static str, now_us: u64) {
        if !self.enabled {
            return;
        }
        self.stack.push((name.to_string(), cat, now_us));
    }

    /// Closes the innermost open span at virtual time `now_us` and emits
    /// it. Unbalanced calls (no open span) are ignored rather than
    /// panicking — telemetry must never take down the workload.
    pub fn end(&mut self, now_us: u64) {
        if !self.enabled {
            return;
        }
        let Some((name, cat, start_us)) = self.stack.pop() else {
            return;
        };
        crate::sink::emit_span(&SpanEvent {
            name,
            cat,
            track: self.track,
            start_us,
            dur_us: now_us.saturating_sub(start_us),
            depth: self.stack.len() as u32,
        });
    }
}

/// No-op stand-in compiled without the `audit` feature: same surface, zero
/// size, zero work — MCU-profile callers keep their instrumentation lines.
#[cfg(not(feature = "audit"))]
#[derive(Debug)]
pub struct Tracer;

#[cfg(not(feature = "audit"))]
impl Tracer {
    /// No-op; see the `audit`-enabled `Tracer`.
    pub fn new(_label: &str) -> Self {
        Tracer
    }

    /// Always `false` without the `audit` feature.
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// No-op; see the `audit`-enabled `Tracer`.
    pub fn begin(&mut self, _name: &str, _cat: &'static str, _now_us: u64) {}

    /// No-op; see the `audit`-enabled `Tracer`.
    pub fn end(&mut self, _now_us: u64) {}
}

/// FNV-1a over the label bytes: the track identity for [`SpanEvent`]s.
/// Stable across runs and platforms (pure arithmetic, no RandomState).
#[cfg(feature = "audit")]
fn fnv1a(label: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in label.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::set_timings_enabled;

    /// Serializes tests that read or flip the process-global trace switch.
    pub(super) static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn laps_measure_successive_intervals() {
        let mut sw = Stopwatch::start();
        let mut acc = 0u64;
        for _ in 0..1000 {
            acc = acc.wrapping_add(1);
        }
        std::hint::black_box(acc);
        let first = sw.lap();
        let second = sw.lap();
        // Both laps are real measurements; the second covers almost no work.
        assert!(first > 0 || second > 0 || cfg!(miri));
    }

    #[test]
    fn disabled_timings_make_stopwatch_inert() {
        set_timings_enabled(false);
        let mut sw = Stopwatch::start();
        std::thread::yield_now();
        assert_eq!(sw.lap(), 0);
        assert_eq!(sw.lap(), 0);
        set_timings_enabled(true);
    }

    #[test]
    fn stopwatch_stays_inert_if_timings_enable_mid_flight() {
        // The enabled/inert decision is taken at `start()`: flipping the
        // switch afterwards must not wake an inert stopwatch (the batch it
        // measures would report a nonsense partial interval).
        set_timings_enabled(false);
        let mut sw = Stopwatch::start();
        set_timings_enabled(true);
        assert_eq!(sw.lap(), 0);
    }

    #[test]
    fn lap_nanoseconds_saturate_at_u64_max() {
        assert_eq!(saturate_ns(0), 0);
        assert_eq!(saturate_ns(1_500), 1_500);
        assert_eq!(saturate_ns(u128::from(u64::MAX)), u64::MAX);
        assert_eq!(saturate_ns(u128::from(u64::MAX) + 1), u64::MAX);
        assert_eq!(saturate_ns(u128::MAX), u64::MAX);
    }

    #[test]
    fn trace_switch_defaults_off_and_toggles() {
        let _lock = TRACE_LOCK.lock().unwrap();
        assert!(!trace_enabled());
        set_trace_enabled(true);
        assert!(trace_enabled());
        set_trace_enabled(false);
        assert!(!trace_enabled());
    }

    #[cfg(feature = "audit")]
    mod tracer {
        use super::super::*;
        use crate::sink::install_thread;
        use crate::trace::TraceSink;
        use std::sync::Arc;

        #[test]
        fn disabled_tracer_records_nothing() {
            let _lock = super::TRACE_LOCK.lock().unwrap();
            let sink = Arc::new(TraceSink::new());
            let _guard = install_thread(sink.clone());
            // trace_enabled() is false by default, so this tracer is inert
            // even though a sink is installed.
            let mut tracer = Tracer::new("cell");
            assert!(!tracer.is_enabled());
            tracer.begin("sequence", "sim", 0);
            tracer.end(10);
            assert!(sink.take().is_empty());
        }

        #[test]
        fn spans_nest_and_emit_on_close() {
            let _lock = super::TRACE_LOCK.lock().unwrap();
            let sink = Arc::new(TraceSink::new());
            let _guard = install_thread(sink.clone());
            set_trace_enabled(true);
            let mut tracer = Tracer::new("epi/Linear/Std/r0.50");
            tracer.begin("sequence", "sim", 100);
            tracer.begin("encode", "encode", 100);
            tracer.end(190); // encode
            tracer.begin("attempt", "link", 200);
            tracer.end(260); // attempt
            tracer.end(300); // sequence
            tracer.end(999); // unbalanced: ignored
            set_trace_enabled(false);
            let spans = sink.take();
            // Meta announcement plus the three closed spans, in close order.
            assert_eq!(spans.len(), 4);
            assert_eq!(
                (spans[0].cat, spans[0].name.as_str()),
                ("meta", "epi/Linear/Std/r0.50")
            );
            assert_eq!(
                (
                    spans[1].name.as_str(),
                    spans[1].start_us,
                    spans[1].dur_us,
                    spans[1].depth
                ),
                ("encode", 100, 90, 1)
            );
            assert_eq!(
                (
                    spans[2].name.as_str(),
                    spans[2].start_us,
                    spans[2].dur_us,
                    spans[2].depth
                ),
                ("attempt", 200, 60, 1)
            );
            assert_eq!(
                (
                    spans[3].name.as_str(),
                    spans[3].start_us,
                    spans[3].dur_us,
                    spans[3].depth
                ),
                ("sequence", 100, 200, 0)
            );
            // All spans share the track derived from the label.
            assert!(spans.iter().all(|s| s.track == spans[0].track));
        }

        #[test]
        fn track_identity_is_a_stable_label_hash() {
            assert_eq!(fnv1a("a"), fnv1a("a"));
            assert_ne!(fnv1a("epi/Std"), fnv1a("epi/AGE"));
            // Pinned so track ids in archived traces stay comparable.
            assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        }
    }
}
