//! Zero-dependency observability for the AGE reproduction.
//!
//! AGE's claims are quantitative: message sizes must be constant under the
//! defense, and the encoder's prune/group/merge/quantize/pack pipeline must
//! stay cheap enough for low-power sensors. This crate provides the
//! instrumentation to observe both, with no external dependencies so the
//! workspace builds offline, and no heap allocation or locking on the
//! disabled path so instrumentation can't itself become a timing side
//! channel on the MCU.
//!
//! Components:
//!
//! - [`metrics`] — lock-free [`Counter`]s and fixed-bucket [`Histogram`]s.
//! - [`span`] — a [`Stopwatch`] for per-stage wall-clock timings, and a
//!   [`Tracer`] for hierarchical virtual-time spans (a no-op without the
//!   `audit` feature); behind `audit`, [`trace`] renders collected spans
//!   as Chrome `trace_event` JSON.
//! - [`record`] — the per-batch [`BatchRecord`] schema (mirrors
//!   `age-core`'s `inspect_message` layout) with stable JSONL output.
//! - [`sink`] — pluggable destinations: [`NullSink`], [`RecordingSink`]
//!   (tests), [`JsonlSink`] (runs), [`FanoutSink`], with thread-local and
//!   process-global installation.
//! - [`summary`] — [`Summary`] rollups whose message-size stddev column is
//!   the machine-checkable constant-size invariant, with p50/p95/p99
//!   encode-time percentiles.
//! - [`leakage`] — streaming `(event label, wire size)` joint distributions
//!   with online NMI and a seeded permutation test; behind the `audit`
//!   feature, the [`LeakageAudit`]/[`LeakageSink`] pipeline and the
//!   [`LeakageGate`] CI regression gate.
//! - [`monitor`] — tumbling virtual-time windows scoring the same two
//!   channels *mid-run*, raising deterministic [`Alarm`]s when a window
//!   crosses the gate threshold (behind `audit`).
//! - [`recorder`] — the fixed-capacity [`FlightRecorder`] ring of recent
//!   ingest events backing the gateway's postmortem dumps (behind
//!   `audit`).
//! - [`rng`] — [`DetRng`], the deterministic SplitMix64/xoshiro256**
//!   generator the rest of the workspace uses instead of an external `rand`
//!   dependency.
//!
//! Producers (the `age-core` encoders) gate their instrumentation behind a
//! `telemetry` cargo feature; with it off, every call site compiles away
//! and this crate is only linked for [`rng`].

pub mod alloc;
pub mod leakage;
pub mod metrics;
#[cfg(feature = "audit")]
pub mod monitor;
#[cfg(feature = "audit")]
pub mod nonce;
pub mod record;
#[cfg(feature = "audit")]
pub mod recorder;
pub mod rng;
pub mod sink;
pub mod span;
pub mod summary;
#[cfg(feature = "audit")]
pub mod trace;

pub use leakage::{entropy_from_counts, nmi_pairs, permutation_test_pairs, LeakageStream};
#[cfg(feature = "audit")]
pub use leakage::{
    GateOutcome, LeakageAudit, LeakageEntry, LeakageGate, LeakageReport, LeakageSink,
};
pub use metrics::{Counter, Histogram};
#[cfg(feature = "audit")]
pub use monitor::{Alarm, AlarmKind, MonitorConfig, WindowScore, WindowTraffic, WindowedMonitor};
#[cfg(feature = "audit")]
pub use nonce::{
    begin_epoch, reset_epoch_counters, FleetNonceAudit, FleetNonceReuse, NonceAudit,
    NonceAuditSink, NonceReuse, SeqSet,
};
#[cfg(feature = "audit")]
pub use record::WireRecord;
pub use record::{BatchRecord, GroupRecord, StageTimings};
#[cfg(feature = "audit")]
pub use recorder::{FlightRecord, FlightRecorder, IngestRung};
pub use rng::{DetRng, SliceShuffle};
pub use sink::{
    active, clear_global, context_epoch, context_event, context_vtime, emit, install_global,
    install_thread, set_context_epoch, set_context_event, set_context_label, set_context_vtime,
    set_timings_enabled, stamp, timings_enabled, FanoutSink, JsonlSink, NullSink, RecordingSink,
    Sink, ThreadSinkGuard,
};
#[cfg(feature = "audit")]
pub use sink::{emit_span, emit_wire};
#[cfg(feature = "audit")]
pub use span::SpanEvent;
pub use span::{set_trace_enabled, trace_enabled, Stopwatch, Tracer};
pub use summary::{StreamStats, Summary, SummarySink, TransportRollup};
#[cfg(feature = "audit")]
pub use trace::{render_chrome_json, TraceSink};
