//! Deterministic, dependency-free pseudo-randomness.
//!
//! The simulator, dataset generators, and attack harness all need
//! reproducible random streams, but the evaluation environment must build
//! with no network access, so an external `rand` dependency is off the
//! table. [`DetRng`] is a xoshiro256** generator seeded through SplitMix64
//! (Blackman & Vigna's recommended seeding), exposing the small API surface
//! the workspace actually uses: `gen_range`, `gen_bool`, and slice
//! shuffling.
//!
//! The stream for a given seed is part of the repo's reproducibility
//! contract: `age-sim` promises byte-identical telemetry output for
//! identical seeds, which holds only if this generator never changes
//! behavior for existing method calls.
//!
//! # Examples
//!
//! ```
//! use age_telemetry::rng::{DetRng, SliceShuffle};
//!
//! let mut rng = DetRng::seed_from_u64(7);
//! let coin = rng.gen_bool(0.5);
//! let idx = rng.gen_range(0..10usize);
//! assert!(idx < 10);
//! let mut deck: Vec<u32> = (0..52).collect();
//! deck.shuffle(&mut rng);
//! // Same seed, same stream.
//! let mut rng2 = DetRng::seed_from_u64(7);
//! assert_eq!(coin, rng2.gen_bool(0.5));
//! assert_eq!(idx, rng2.gen_range(0..10usize));
//! ```

/// A deterministic xoshiro256** generator.
///
/// Not cryptographic — it drives simulations and tests, never key material.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

/// One SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform draw from `range`; supports the integer and float range
    /// types used across the workspace.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A uniform integer in `[0, bound)` via Lemire-style multiply-shift
    /// (negligible bias at simulation scales).
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Range types [`DetRng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng: &mut DetRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from(self, rng: &mut DetRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// In-place Fisher–Yates shuffling driven by a [`DetRng`].
pub trait SliceShuffle {
    /// Shuffles the slice uniformly in place.
    fn shuffle(&mut self, rng: &mut DetRng);
}

impl<T> SliceShuffle for [T] {
    fn shuffle(&mut self, rng: &mut DetRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = DetRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And it actually moves things for non-trivial inputs.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = DetRng::seed_from_u64(6);
        let _ = rng.gen_range(5usize..5);
    }
}
