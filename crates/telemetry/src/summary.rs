//! Rollups of batch records into a human-readable run summary.
//!
//! The headline column is message-size standard deviation: AGE's defense
//! claim is that every message a node emits has the same length, so for the
//! AGE and Padded encoders the stddev must be exactly 0 while the Standard
//! baseline's is positive. [`Summary`] makes that invariant machine-checkable
//! ([`StreamStats::size_stddev`]) and prints it as a table for humans.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::record::BatchRecord;
use crate::sink::Sink;

/// Online statistics for one `(label, encoder)` stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Batches observed.
    pub batches: u64,
    /// Smallest message in bytes.
    pub min_len: usize,
    /// Largest message in bytes.
    pub max_len: usize,
    /// Measurements in minus measurements kept, accumulated.
    pub pruned_total: u64,
    /// Total encode time across batches, nanoseconds.
    pub encode_ns_total: u64,
    // Welford accumulators for message length.
    mean: f64,
    m2: f64,
    // Per-batch total encode times, kept so the rollup can report real
    // percentiles instead of just a mean (tail latency is what matters on
    // a duty-cycled MCU).
    encode_ns_samples: Vec<u64>,
}

impl StreamStats {
    fn new() -> Self {
        StreamStats {
            batches: 0,
            min_len: usize::MAX,
            max_len: 0,
            pruned_total: 0,
            encode_ns_total: 0,
            mean: 0.0,
            m2: 0.0,
            encode_ns_samples: Vec::new(),
        }
    }

    fn observe(&mut self, record: &BatchRecord) {
        self.batches += 1;
        self.min_len = self.min_len.min(record.message_len);
        self.max_len = self.max_len.max(record.message_len);
        self.pruned_total += record.input_len.saturating_sub(record.kept_len) as u64;
        self.encode_ns_total += record.timings.total_ns();
        self.encode_ns_samples.push(record.timings.total_ns());
        let x = record.message_len as f64;
        let delta = x - self.mean;
        self.mean += delta / self.batches as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Mean message length in bytes.
    pub fn size_mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation of message length in bytes.
    ///
    /// Exactly `0.0` when every observed message had the same length — the
    /// property the AGE and Padded defenses must exhibit.
    pub fn size_stddev(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.m2 / self.batches as f64).sqrt()
        }
    }

    /// Whether every observed message had the identical length.
    pub fn is_constant_size(&self) -> bool {
        self.batches > 0 && self.min_len == self.max_len
    }

    /// Mean encode time per batch in microseconds.
    pub fn encode_us_mean(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.encode_ns_total as f64 / self.batches as f64 / 1000.0
        }
    }

    /// Nearest-rank percentile of per-batch encode time, in microseconds.
    /// `q` is a fraction in `(0, 1]`; an empty stream reports 0.
    pub fn encode_us_percentile(&self, q: f64) -> f64 {
        if self.encode_ns_samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.encode_ns_samples.clone();
        sorted.sort_unstable();
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1] as f64 / 1000.0
    }

    /// Median per-batch encode time in microseconds.
    pub fn encode_us_p50(&self) -> f64 {
        self.encode_us_percentile(0.50)
    }

    /// 95th-percentile per-batch encode time in microseconds.
    pub fn encode_us_p95(&self) -> f64 {
        self.encode_us_percentile(0.95)
    }

    /// 99th-percentile per-batch encode time in microseconds.
    pub fn encode_us_p99(&self) -> f64 {
        self.encode_us_percentile(0.99)
    }
}

/// A run-level rollup keyed by `(label, encoder)`.
#[derive(Debug, Default)]
pub struct Summary {
    streams: BTreeMap<(String, &'static str), StreamStats>,
    #[cfg(feature = "audit")]
    leakage: crate::leakage::LeakageAudit,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from already-collected records.
    pub fn from_records<'a, I: IntoIterator<Item = &'a BatchRecord>>(records: I) -> Self {
        let mut summary = Self::new();
        for record in records {
            summary.observe(record);
        }
        summary
    }

    /// Folds one record into the rollup.
    pub fn observe(&mut self, record: &BatchRecord) {
        self.streams
            .entry((record.label.clone(), record.encoder))
            .or_insert_with(StreamStats::new)
            .observe(record);
    }

    /// Stats for one `(label, encoder)` stream, if observed.
    pub fn stream(&self, label: &str, encoder: &str) -> Option<&StreamStats> {
        self.streams
            .iter()
            .find(|((l, e), _)| l == label && *e == encoder)
            .map(|(_, stats)| stats)
    }

    /// Stats for an encoder regardless of label, merged in observation
    /// order. Returns `None` if the encoder never appeared.
    pub fn encoder_streams(&self, encoder: &str) -> Vec<&StreamStats> {
        self.streams
            .iter()
            .filter(|((_, e), _)| *e == encoder)
            .map(|(_, stats)| stats)
            .collect()
    }

    /// All `(label, encoder)` keys in deterministic (sorted) order.
    pub fn keys(&self) -> Vec<(String, String)> {
        self.streams
            .keys()
            .map(|(l, e)| (l.clone(), e.to_string()))
            .collect()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        #[cfg(feature = "audit")]
        {
            self.streams.is_empty() && self.leakage.is_empty()
        }
        #[cfg(not(feature = "audit"))]
        {
            self.streams.is_empty()
        }
    }

    /// Folds one sealed-frame observation into the leakage rollup.
    #[cfg(feature = "audit")]
    pub fn observe_wire(&mut self, record: &crate::record::WireRecord) {
        self.leakage.observe_wire(record);
    }

    /// The leakage audit accumulated alongside the size/timing rollup.
    #[cfg(feature = "audit")]
    pub fn leakage(&self) -> &crate::leakage::LeakageAudit {
        &self.leakage
    }
}

impl fmt::Display for Summary {
    /// Renders the rollup as a fixed-width table:
    ///
    /// ```text
    /// label                encoder    batches   min    max   mean  stddev  pruned  p50 µs  p95 µs  p99 µs
    /// -------------------- --------- -------- ----- ------ ------ ------- ------- ------- ------- -------
    /// mimic                age            200    52     52   52.0   0.000    1042    10.8    14.2    19.5
    /// ```
    ///
    /// With the `audit` feature, a leakage section follows when wire frames
    /// were observed: per-stream frame counts, distinct sizes, and NMI.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<20} {:<9} {:>8} {:>5} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "label",
            "encoder",
            "batches",
            "min",
            "max",
            "mean",
            "stddev",
            "pruned",
            "p50 µs",
            "p95 µs",
            "p99 µs"
        )?;
        writeln!(
            f,
            "{:-<20} {:-<9} {:-<8} {:-<5} {:-<6} {:-<6} {:-<7} {:-<7} {:-<7} {:-<7} {:-<7}",
            "", "", "", "", "", "", "", "", "", "", ""
        )?;
        for ((label, encoder), stats) in &self.streams {
            writeln!(
                f,
                "{:<20} {:<9} {:>8} {:>5} {:>6} {:>6.1} {:>7.3} {:>7} {:>7.1} {:>7.1} {:>7.1}",
                label,
                encoder,
                stats.batches,
                stats.min_len,
                stats.max_len,
                stats.size_mean(),
                stats.size_stddev(),
                stats.pruned_total,
                stats.encode_us_p50(),
                stats.encode_us_p95(),
                stats.encode_us_p99(),
            )?;
        }
        #[cfg(feature = "audit")]
        if !self.leakage.is_empty() {
            writeln!(f, "\nleakage audit (sealed wire frames per stream):")?;
            writeln!(
                f,
                "{:<28} {:<9} {:>7} {:>6} {:>7}",
                "label", "encoder", "frames", "sizes", "NMI"
            )?;
            writeln!(f, "{:-<28} {:-<9} {:-<7} {:-<6} {:-<7}", "", "", "", "", "")?;
            for ((label, encoder), stream) in self.leakage.streams() {
                writeln!(
                    f,
                    "{:<28} {:<9} {:>7} {:>6} {:>7.4}",
                    label,
                    encoder,
                    stream.total(),
                    stream.distinct_sizes(),
                    stream.nmi(),
                )?;
            }
        }
        Ok(())
    }
}

/// A [`Sink`] that folds records straight into a [`Summary`], for use in a
/// [`FanoutSink`](crate::sink::FanoutSink) alongside a `JsonlSink`.
#[derive(Debug, Default)]
pub struct SummarySink {
    summary: Mutex<Summary>,
}

impl SummarySink {
    /// An empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the accumulated summary, leaving an empty one behind.
    pub fn take(&self) -> Summary {
        std::mem::take(&mut *self.summary.lock().unwrap())
    }
}

impl Sink for SummarySink {
    fn record_batch(&self, record: &BatchRecord) {
        self.summary.lock().unwrap().observe(record);
    }

    #[cfg(feature = "audit")]
    fn record_wire(&self, record: &crate::record::WireRecord) {
        self.summary.lock().unwrap().observe_wire(record);
    }
}

/// The transport section of the summary rollup: a snapshot of the global
/// transport counters in [`metrics::global`](crate::metrics::global).
///
/// This is deliberately *not* part of [`Summary`]'s `Display`: the global
/// counters accumulate for the whole process, so folding them into the
/// per-stream summary would break the byte-identical-reports contract when
/// several runs share a process. Callers (the `repro` binary) capture and
/// print it once, after all experiments finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportRollup {
    /// Frames put on the wire, retransmissions included.
    pub frames_sent: u64,
    /// Retransmission attempts.
    pub frames_retried: u64,
    /// Frames the simulated channel dropped in flight.
    pub frames_dropped: u64,
    /// Frames rejected for failed authentication or malformed framing.
    pub frames_auth_failed: u64,
    /// Frames rejected by the replay window.
    pub frames_replay_rejected: u64,
    /// Frames rejected by the far-future sequence guard.
    pub frames_far_future: u64,
    /// Delivered payloads whose batch decode failed.
    pub frames_decode_failed: u64,
    /// Sensor power losses recovered from.
    pub sensor_reboots: u64,
    /// Sequence-reservation journal records persisted to NVM.
    pub journal_flushes: u64,
    /// Sequence numbers retired unused by reboot recovery.
    pub sequences_skipped: u64,
    /// Explicit-sequence seals that risked reusing a (key, nonce) pair.
    pub nonce_reuse_risked: u64,
    /// Epoch rotations committed by sensors.
    pub key_rotations: u64,
}

impl TransportRollup {
    /// Snapshots the current global transport counters.
    pub fn capture() -> Self {
        use crate::metrics::global as g;
        TransportRollup {
            frames_sent: g::FRAMES_SENT.get(),
            frames_retried: g::FRAMES_RETRIED.get(),
            frames_dropped: g::FRAMES_DROPPED.get(),
            frames_auth_failed: g::FRAMES_AUTH_FAILED.get(),
            frames_replay_rejected: g::FRAMES_REPLAY_REJECTED.get(),
            frames_far_future: g::FRAMES_FAR_FUTURE.get(),
            frames_decode_failed: g::FRAMES_DECODE_FAILED.get(),
            sensor_reboots: g::SENSOR_REBOOTS.get(),
            journal_flushes: g::JOURNAL_FLUSHES.get(),
            sequences_skipped: g::SEQUENCES_SKIPPED.get(),
            nonce_reuse_risked: g::NONCE_REUSE_RISKED.get(),
            key_rotations: g::KEY_ROTATIONS.get(),
        }
    }

    /// Whether nothing transport-related happened (section can be elided).
    pub fn is_empty(&self) -> bool {
        *self == TransportRollup::default()
    }
}

impl fmt::Display for TransportRollup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  frames: {} sent / {} retried / {} dropped",
            self.frames_sent, self.frames_retried, self.frames_dropped
        )?;
        writeln!(
            f,
            "  rejected: {} auth / {} replay / {} far-future / {} decode",
            self.frames_auth_failed,
            self.frames_replay_rejected,
            self.frames_far_future,
            self.frames_decode_failed
        )?;
        writeln!(
            f,
            "  resets: {} reboots / {} journal flushes / {} sequences skipped / {} reuse risked",
            self.sensor_reboots,
            self.journal_flushes,
            self.sequences_skipped,
            self.nonce_reuse_risked
        )?;
        // Elided when no rotation happened, keeping legacy rollups stable.
        if self.key_rotations > 0 {
            writeln!(f, "  rekey: {} epoch rotations", self.key_rotations)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(encoder: &'static str, label: &str, len: usize) -> BatchRecord {
        BatchRecord {
            encoder,
            label: label.to_string(),
            input_len: 64,
            kept_len: 60,
            message_len: len,
            ..Default::default()
        }
    }

    #[test]
    fn constant_size_stream_has_zero_stddev() {
        let records: Vec<_> = (0..50).map(|_| rec("age", "mimic", 52)).collect();
        let summary = Summary::from_records(&records);
        let stats = summary.stream("mimic", "age").unwrap();
        assert_eq!(stats.batches, 50);
        assert_eq!(stats.min_len, 52);
        assert_eq!(stats.max_len, 52);
        assert_eq!(stats.size_stddev(), 0.0);
        assert!(stats.is_constant_size());
        assert_eq!(stats.pruned_total, 50 * 4);
    }

    #[test]
    fn variable_size_stream_has_positive_stddev() {
        let records = vec![
            rec("standard", "mimic", 40),
            rec("standard", "mimic", 60),
            rec("standard", "mimic", 50),
        ];
        let summary = Summary::from_records(&records);
        let stats = summary.stream("mimic", "standard").unwrap();
        assert!(stats.size_stddev() > 0.0);
        assert!(!stats.is_constant_size());
        assert_eq!(stats.min_len, 40);
        assert_eq!(stats.max_len, 60);
        // Population stddev of {40, 50, 60} is sqrt(200/3).
        assert!((stats.size_stddev() - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn streams_are_keyed_by_label_and_encoder() {
        let records = vec![
            rec("age", "a", 52),
            rec("age", "b", 64),
            rec("standard", "a", 33),
        ];
        let summary = Summary::from_records(&records);
        assert_eq!(summary.keys().len(), 3);
        assert_eq!(summary.stream("a", "age").unwrap().max_len, 52);
        assert_eq!(summary.stream("b", "age").unwrap().max_len, 64);
        assert_eq!(summary.encoder_streams("age").len(), 2);
    }

    #[test]
    fn display_renders_every_stream_row() {
        let records = vec![rec("age", "mimic", 52), rec("standard", "mimic", 33)];
        let table = Summary::from_records(&records).to_string();
        assert!(table.contains("stddev"));
        assert!(table.contains("age"));
        assert!(table.contains("standard"));
        assert!(table.lines().count() >= 4, "{table}");
    }

    #[test]
    fn encode_time_percentiles_use_nearest_rank() {
        let mut records: Vec<BatchRecord> = (1..=100u64)
            .map(|i| {
                let mut r = rec("age", "p", 52);
                r.timings.pack_ns = i * 1000; // 1µs..100µs
                r
            })
            .collect();
        // Observation order must not matter.
        records.reverse();
        let summary = Summary::from_records(&records);
        let stats = summary.stream("p", "age").unwrap();
        assert_eq!(stats.encode_us_p50(), 50.0);
        assert_eq!(stats.encode_us_p95(), 95.0);
        assert_eq!(stats.encode_us_p99(), 99.0);
        assert_eq!(stats.encode_us_percentile(1.0), 100.0);
        assert_eq!(StreamStats::new().encode_us_p99(), 0.0);
    }

    #[test]
    fn display_shows_percentile_columns() {
        let mut record = rec("age", "mimic", 52);
        record.timings.prune_ns = 7000;
        let table = Summary::from_records(&[record]).to_string();
        assert!(table.contains("p50 µs"), "{table}");
        assert!(table.contains("p95 µs"), "{table}");
        assert!(table.contains("p99 µs"), "{table}");
        assert!(!table.contains("enc µs"), "{table}");
    }

    #[cfg(feature = "audit")]
    #[test]
    fn summary_rolls_up_wire_records_and_displays_leakage() {
        use crate::record::WireRecord;
        let sink = SummarySink::new();
        for i in 0..60u64 {
            sink.record_wire(&WireRecord {
                label: "epi/Linear/Std/r0.50".into(),
                encoder: "Std".into(),
                seq: i,
                event: (i % 2) as usize,
                wire_bytes: 60 + (i % 2) as usize * 20,
                epoch: String::new(),
                virtual_time: 0,
            });
        }
        let summary = sink.take();
        assert!(!summary.is_empty());
        let stream = summary
            .leakage()
            .stream("epi/Linear/Std/r0.50", "Std")
            .unwrap();
        assert_eq!(stream.total(), 60);
        assert!(stream.nmi() > 0.9);
        let table = summary.to_string();
        assert!(table.contains("leakage audit"), "{table}");
        assert!(table.contains("Std"), "{table}");
    }

    #[test]
    fn summary_sink_accumulates_and_takes() {
        let sink = SummarySink::new();
        sink.record_batch(&rec("age", "x", 52));
        sink.record_batch(&rec("age", "x", 52));
        let summary = sink.take();
        assert_eq!(summary.stream("x", "age").unwrap().batches, 2);
        assert!(sink.take().is_empty());
    }
}
