//! The flight recorder: a fixed-capacity ring of recent ingest events.
//!
//! When a leakage gate fails or a nonce audit goes dirty, the rollups
//! say *that* something went wrong but not *which frames* did it. Each
//! gateway shard keeps a [`FlightRecorder`] — the last N ingest events
//! as plain-old-data [`FlightRecord`]s — so a postmortem dump can show
//! the traffic immediately preceding the trigger.
//!
//! The recorder is built for the ingest hot path: the ring is allocated
//! once at construction and recording is an indexed store plus a
//! counter bump — zero steady-state allocations, pinned by the gateway's
//! counting-allocator test. Records order totally (virtual send stamp
//! first), so the merged dump across shards is a deterministic sort:
//! with enough capacity that no shard evicted, the merged record list is
//! byte-identical at any shard count.

/// The ingest pipeline stage a frame ended at — `Accepted`, or the
/// rejection rung that dropped it. Mirrors the gateway's per-rung
/// counters one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IngestRung {
    /// Authenticated, replay-checked, and decoded.
    Accepted,
    /// Shorter than the addressing header.
    HeaderTruncated,
    /// Over the configured datagram ceiling.
    HeaderOversized,
    /// Addressed to a sensor with no session.
    UnknownSensor,
    /// AEAD tag failed.
    AuthFailed,
    /// Rejected by the session's replay window.
    ReplayRejected,
    /// Sequence jumped past the far-future guard.
    FarFuture,
    /// Too short to carry a sequence number.
    MissingSequence,
    /// Authenticated but the payload failed to decode (includes a
    /// session pointing at a cohort the gateway does not have).
    DecodeFailed,
    /// The session's receiver followed a key-epoch rotation while
    /// accepting this frame. Not a pipeline stage: a rotation record is
    /// emitted *in addition to* the frame's `Accepted` record, and its
    /// `sequence` field carries the new epoch rather than a sequence
    /// number.
    EpochRotated,
}

impl IngestRung {
    /// Stable snake_case name, matching the fleet report's counter keys.
    pub fn as_str(&self) -> &'static str {
        match self {
            IngestRung::Accepted => "accepted",
            IngestRung::HeaderTruncated => "header_truncated",
            IngestRung::HeaderOversized => "header_oversized",
            IngestRung::UnknownSensor => "unknown_sensor",
            IngestRung::AuthFailed => "auth_failed",
            IngestRung::ReplayRejected => "replay_rejected",
            IngestRung::FarFuture => "far_future",
            IngestRung::MissingSequence => "missing_sequence",
            IngestRung::DecodeFailed => "decode_failed",
            IngestRung::EpochRotated => "epoch_rotated",
        }
    }
}

/// One ingest event, compact enough to keep thousands per shard.
/// Field order doubles as the sort order (send stamp first), so a
/// merged multi-shard dump sorts into arrival order deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlightRecord {
    /// Virtual send stamp of the frame, microseconds.
    pub sent_at_us: u64,
    /// Sensor id from the addressing header (0 if headerless garbage).
    pub sensor_id: u64,
    /// Sequence number of an accepted frame; `u64::MAX` when the frame
    /// was rejected before one was recovered.
    pub sequence: u64,
    /// Ground-truth event label carried by the fleet frame.
    pub event: u32,
    /// Attacker-visible datagram length.
    pub wire_bytes: u32,
    /// Where in the pipeline the frame ended.
    pub rung: IngestRung,
}

/// Fixed-capacity ring buffer of the most recent [`FlightRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    ring: Vec<FlightRecord>,
    capacity: usize,
    /// Slot the next record overwrites once the ring is full.
    next: usize,
    /// Records ever offered (retained + evicted).
    total: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (0 disables it).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records ever offered, evicted ones included.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    /// Stores one record, evicting the oldest once full. Allocation-free
    /// after the ring first fills (and before that, `Vec::push` within
    /// the reserved capacity never reallocates).
    pub fn record(&mut self, record: FlightRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(record);
        } else {
            self.ring[self.next] = record;
        }
        self.next += 1;
        if self.next == self.capacity {
            self.next = 0;
        }
        self.total += 1;
    }

    /// Retained records in arrival order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &FlightRecord> {
        let split = if self.ring.len() < self.capacity {
            0
        } else {
            self.next
        };
        self.ring[split..].iter().chain(self.ring[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: u64) -> FlightRecord {
        FlightRecord {
            sent_at_us: t,
            sensor_id: t % 5,
            sequence: t,
            event: (t % 3) as u32,
            wire_bytes: 168,
            rung: IngestRung::Accepted,
        }
    }

    #[test]
    fn fills_then_evicts_oldest_first() {
        let mut r = FlightRecorder::with_capacity(4);
        for t in 0..6u64 {
            r.record(record(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 6);
        assert_eq!(r.dropped(), 2);
        let stamps: Vec<u64> = r.iter().map(|x| x.sent_at_us).collect();
        assert_eq!(stamps, vec![2, 3, 4, 5]);
    }

    #[test]
    fn partial_ring_iterates_in_arrival_order() {
        let mut r = FlightRecorder::with_capacity(8);
        for t in [7u64, 3, 9] {
            r.record(record(t));
        }
        let stamps: Vec<u64> = r.iter().map(|x| x.sent_at_us).collect();
        assert_eq!(stamps, vec![7, 3, 9]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_recorder_is_inert() {
        let mut r = FlightRecorder::with_capacity(0);
        r.record(record(1));
        assert!(r.is_empty());
        assert_eq!(r.total(), 0);
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn records_sort_chronologically() {
        let mut records = [record(9), record(1), record(5)];
        records.sort_unstable();
        let stamps: Vec<u64> = records.iter().map(|x| x.sent_at_us).collect();
        assert_eq!(stamps, vec![1, 5, 9]);
    }

    #[test]
    fn rung_names_match_report_keys() {
        assert_eq!(IngestRung::Accepted.as_str(), "accepted");
        assert_eq!(IngestRung::ReplayRejected.as_str(), "replay_rejected");
        assert_eq!(IngestRung::DecodeFailed.as_str(), "decode_failed");
    }

    // The zero-allocation claim is machine-checked in `age-gateway`'s
    // `tests/alloc.rs`, whose test binary owns a counting allocator; a
    // delta assertion here would be vacuous (no allocator installed).

    #[test]
    fn wrap_around_keeps_exactly_the_newest_records() {
        let mut r = FlightRecorder::with_capacity(3);
        for t in 0..10u64 {
            r.record(record(t));
        }
        let stamps: Vec<u64> = r.iter().map(|x| x.sent_at_us).collect();
        assert_eq!(stamps, vec![7, 8, 9]);
        assert_eq!(r.dropped(), 7);
    }
}
