//! Lock-free counters and fixed-bucket histograms.
//!
//! These are the primitives suitable for the MCU-flavored hot paths in
//! `age-core`: a [`Counter`] is one relaxed atomic add, a [`Histogram`] is
//! one index computation plus one relaxed atomic add. Neither allocates,
//! locks, or branches on sink state, so they can sit inside the encoder
//! without creating a new timing side-channel of their own.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use age_telemetry::metrics::Counter;
///
/// static ENCODED: Counter = Counter::new();
/// ENCODED.add(1);
/// assert!(ENCODED.get() >= 1);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter, usable in `static` position.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` (relaxed; totals are read out-of-band).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and between experiment cells).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two up to `2^62`,
/// plus the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples with no heap allocation.
///
/// Bucket `0` counts zero samples; bucket `i ≥ 1` counts samples whose
/// most-significant bit is `i - 1` (i.e. values in `[2^(i-1), 2^i)`).
///
/// # Examples
///
/// ```
/// use age_telemetry::metrics::Histogram;
///
/// static SIZES: Histogram = Histogram::new();
/// SIZES.record(220);
/// SIZES.record(220);
/// assert_eq!(SIZES.count(), 2);
/// assert!(SIZES.mean() > 219.0 && SIZES.mean() < 221.0);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram, usable in `static` position.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; splat a fresh zero per array slot.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value).min(HISTOGRAM_BUCKETS - 1)]
            .fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts (`counts[i]` covers `[2^(i-1), 2^i)`, `counts[0]`
    /// covers zero).
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Resets all buckets (tests and between experiment cells).
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Workspace-global counters the instrumented crates feed. All remain zero
/// when the `telemetry` feature is compiled out of the producers.
pub mod global {
    use super::{Counter, Histogram};

    /// Batches encoded (any encoder).
    pub static ENCODE_CALLS: Counter = Counter::new();
    /// Nanoseconds spent inside `encode` (any encoder).
    pub static ENCODE_NANOS: Counter = Counter::new();
    /// Measurements dropped by AGE's pruning stage.
    pub static PRUNED_MEASUREMENTS: Counter = Counter::new();
    /// On-air message sizes in bytes.
    pub static MESSAGE_BYTES: Histogram = Histogram::new();
    /// Transport frames put on the wire (including retransmissions).
    pub static FRAMES_SENT: Counter = Counter::new();
    /// Retransmission attempts after a send was not acknowledged.
    pub static FRAMES_RETRIED: Counter = Counter::new();
    /// Frames the (simulated) channel dropped in flight.
    pub static FRAMES_DROPPED: Counter = Counter::new();
    /// Frames the receiver rejected: failed authentication or malformed
    /// cipher framing.
    pub static FRAMES_AUTH_FAILED: Counter = Counter::new();
    /// Delivered payloads whose batch decode failed (receiver skipped the
    /// batch).
    pub static FRAMES_DECODE_FAILED: Counter = Counter::new();
    /// Sealed frame sizes in bytes as actually put on the wire (including
    /// retransmissions) — the size distribution an eavesdropper observes.
    pub static WIRE_FRAME_BYTES: Histogram = Histogram::new();
    /// Frames the receiver rejected for a sequence number implausibly far
    /// ahead of the highest accepted one (the far-future guard).
    pub static FRAMES_FAR_FUTURE: Counter = Counter::new();
    /// Frames the replay window rejected (duplicates of accepted frames,
    /// replays, or frames older than the window).
    pub static FRAMES_REPLAY_REJECTED: Counter = Counter::new();
    /// Sensor power losses recovered from (brownout reboots).
    pub static SENSOR_REBOOTS: Counter = Counter::new();
    /// Sequence-reservation journal records persisted to NVM.
    pub static JOURNAL_FLUSHES: Counter = Counter::new();
    /// Sequence numbers retired unused by conservative reboot recovery.
    pub static SEQUENCES_SKIPPED: Counter = Counter::new();
    /// Explicit-sequence seals at or below the session's high-water mark —
    /// each one risked reusing a (key, nonce) pair.
    pub static NONCE_REUSE_RISKED: Counter = Counter::new();
    /// Epoch rotations committed by sensors (ratchet advanced, new key in
    /// use).
    pub static KEY_ROTATIONS: Counter = Counter::new();

    /// Resets every global metric (between experiment cells).
    pub fn reset() {
        ENCODE_CALLS.reset();
        ENCODE_NANOS.reset();
        PRUNED_MEASUREMENTS.reset();
        MESSAGE_BYTES.reset();
        FRAMES_SENT.reset();
        FRAMES_RETRIED.reset();
        FRAMES_DROPPED.reset();
        FRAMES_AUTH_FAILED.reset();
        FRAMES_DECODE_FAILED.reset();
        WIRE_FRAME_BYTES.reset();
        FRAMES_FAR_FUTURE.reset();
        FRAMES_REPLAY_REJECTED.reset();
        SENSOR_REBOOTS.reset();
        JOURNAL_FLUSHES.reset();
        SEQUENCES_SKIPPED.reset();
        NONCE_REUSE_RISKED.reset();
        KEY_ROTATIONS.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_resets() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap[0], 1); // zero
        assert_eq!(snap[1], 1); // [1, 2)
        assert_eq!(snap[2], 2); // [2, 4)
        assert_eq!(snap[11], 1); // [1024, 2048)
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().iter().sum::<u64>(), 0);
    }

    #[test]
    fn histogram_mean_matches_samples() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        static SHARED: Counter = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        SHARED.add(1);
                    }
                });
            }
        });
        assert_eq!(SHARED.get(), 4000);
    }
}
