//! Per-batch telemetry records and their JSONL serialization.
//!
//! A [`BatchRecord`] is one line of observability output: which encoder ran,
//! how long each AGE pipeline stage took, how many elements flowed in and
//! out of each stage, and the exact wire layout of the resulting message
//! (mirroring `age-core`'s `inspect_message` schema so records can be
//! cross-checked against decoded layouts).
//!
//! Serialization is hand-rolled JSON — the workspace must build offline, so
//! no serde. The format is stable and append-only: one compact JSON object
//! per line, fields in fixed order, making byte-identical output a
//! meaningful determinism check.

/// Wall-clock nanoseconds spent in each AGE pipeline stage for one batch.
///
/// Baseline encoders that skip a stage report 0 for it. All zeros when
/// timing collection is disabled (see
/// [`timings_enabled`](crate::sink::timings_enabled)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Exponent-delta pruning (§4.2).
    pub prune_ns: u64,
    /// Initial exponent-run grouping (§4.3).
    pub group_ns: u64,
    /// Group merging down to the directory budget (§4.3).
    pub merge_ns: u64,
    /// Width assignment / quantization (§4.4).
    pub quantize_ns: u64,
    /// Bit-packing and padding to the target size.
    pub pack_ns: u64,
}

impl StageTimings {
    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.prune_ns + self.group_ns + self.merge_ns + self.quantize_ns + self.pack_ns
    }
}

/// Wire layout of one group, mirroring `age-core`'s `GroupLayout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupRecord {
    /// Measurements covered by this group.
    pub count: usize,
    /// Shared exponent.
    pub exponent: i32,
    /// Mantissa width in bits.
    pub width: u8,
}

/// One encoded batch, as observed by the instrumented encoder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchRecord {
    /// Encoder that produced the message (`"age"`, `"standard"`, `"padded"`, …).
    pub encoder: &'static str,
    /// Caller-assigned stream label (dataset/defense/node id); empty if unset.
    pub label: String,
    /// Batch sequence number within the stream (caller-assigned).
    pub batch: u64,
    /// Measurements handed to the encoder.
    pub input_len: usize,
    /// Measurements surviving pruning (== `input_len` for baselines).
    pub kept_len: usize,
    /// Groups before merging (0 for baselines).
    pub groups_initial: usize,
    /// Groups actually emitted.
    pub groups_final: usize,
    /// Per-group layout of the emitted message.
    pub groups: Vec<GroupRecord>,
    /// Header size in bits.
    pub header_bits: usize,
    /// Group-directory size in bits.
    pub directory_bits: usize,
    /// Mantissa payload size in bits.
    pub data_bits: usize,
    /// Trailing padding in bits.
    pub padding_bits: usize,
    /// Final message length in bytes (must equal the buffer length).
    pub message_len: usize,
    /// Configured target size in bytes, if the encoder pads to one.
    pub target_bytes: Option<usize>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl BatchRecord {
    /// Serializes as one compact JSON object (no trailing newline).
    ///
    /// Field order is fixed so identical records serialize to identical
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_str_field(&mut out, "encoder", self.encoder);
        out.push(',');
        push_str_field(&mut out, "label", &self.label);
        out.push(',');
        push_u64_field(&mut out, "batch", self.batch);
        out.push(',');
        push_u64_field(&mut out, "input_len", self.input_len as u64);
        out.push(',');
        push_u64_field(&mut out, "kept_len", self.kept_len as u64);
        out.push(',');
        push_u64_field(&mut out, "groups_initial", self.groups_initial as u64);
        out.push(',');
        push_u64_field(&mut out, "groups_final", self.groups_final as u64);
        out.push_str(",\"groups\":[");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_u64_field(&mut out, "count", g.count as u64);
            out.push(',');
            push_i64_field(&mut out, "exponent", i64::from(g.exponent));
            out.push(',');
            push_u64_field(&mut out, "width", u64::from(g.width));
            out.push('}');
        }
        out.push(']');
        out.push(',');
        push_u64_field(&mut out, "header_bits", self.header_bits as u64);
        out.push(',');
        push_u64_field(&mut out, "directory_bits", self.directory_bits as u64);
        out.push(',');
        push_u64_field(&mut out, "data_bits", self.data_bits as u64);
        out.push(',');
        push_u64_field(&mut out, "padding_bits", self.padding_bits as u64);
        out.push(',');
        push_u64_field(&mut out, "message_len", self.message_len as u64);
        out.push_str(",\"target_bytes\":");
        match self.target_bytes {
            Some(t) => out.push_str(&t.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"timings_ns\":{");
        push_u64_field(&mut out, "prune", self.timings.prune_ns);
        out.push(',');
        push_u64_field(&mut out, "group", self.timings.group_ns);
        out.push(',');
        push_u64_field(&mut out, "merge", self.timings.merge_ns);
        out.push(',');
        push_u64_field(&mut out, "quantize", self.timings.quantize_ns);
        out.push(',');
        push_u64_field(&mut out, "pack", self.timings.pack_ns);
        out.push_str("}}");
        out
    }
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_i64_field(out: &mut String, key: &str, value: i64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchRecord {
        BatchRecord {
            encoder: "age",
            label: "mimic/age".into(),
            batch: 3,
            input_len: 64,
            kept_len: 41,
            groups_initial: 9,
            groups_final: 4,
            groups: vec![
                GroupRecord {
                    count: 20,
                    exponent: -3,
                    width: 7,
                },
                GroupRecord {
                    count: 21,
                    exponent: 0,
                    width: 9,
                },
            ],
            header_bits: 24,
            directory_bits: 48,
            data_bits: 329,
            padding_bits: 15,
            message_len: 52,
            target_bytes: Some(52),
            timings: StageTimings {
                prune_ns: 100,
                group_ns: 200,
                merge_ns: 300,
                quantize_ns: 400,
                pack_ns: 500,
            },
        }
    }

    #[test]
    fn json_is_stable_and_complete() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"encoder\":\"age\"",
            "\"label\":\"mimic/age\"",
            "\"batch\":3",
            "\"input_len\":64",
            "\"kept_len\":41",
            "\"groups_initial\":9",
            "\"groups_final\":4",
            "\"exponent\":-3",
            "\"message_len\":52",
            "\"target_bytes\":52",
            "\"prune\":100",
            "\"pack\":500",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Identical records serialize identically.
        assert_eq!(json, sample().to_json());
    }

    #[test]
    fn json_escapes_strings_and_encodes_null_target() {
        let mut rec = sample();
        rec.label = "a\"b\\c\nd".into();
        rec.target_bytes = None;
        let json = rec.to_json();
        assert!(json.contains("\"label\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"target_bytes\":null"));
    }

    #[test]
    fn stage_total_sums_all_stages() {
        assert_eq!(sample().timings.total_ns(), 1500);
    }
}
