//! Per-batch telemetry records and their JSONL serialization.
//!
//! A [`BatchRecord`] is one line of observability output: which encoder ran,
//! how long each AGE pipeline stage took, how many elements flowed in and
//! out of each stage, and the exact wire layout of the resulting message
//! (mirroring `age-core`'s `inspect_message` schema so records can be
//! cross-checked against decoded layouts).
//!
//! Serialization is hand-rolled JSON — the workspace must build offline, so
//! no serde. The format is stable and append-only: one compact JSON object
//! per line, fields in fixed order, making byte-identical output a
//! meaningful determinism check.

/// Wall-clock nanoseconds spent in each AGE pipeline stage for one batch.
///
/// Baseline encoders that skip a stage report 0 for it. All zeros when
/// timing collection is disabled (see
/// [`timings_enabled`](crate::sink::timings_enabled)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Exponent-delta pruning (§4.2).
    pub prune_ns: u64,
    /// Initial exponent-run grouping (§4.3).
    pub group_ns: u64,
    /// Group merging down to the directory budget (§4.3).
    pub merge_ns: u64,
    /// Width assignment / quantization (§4.4).
    pub quantize_ns: u64,
    /// Bit-packing and padding to the target size.
    pub pack_ns: u64,
}

impl StageTimings {
    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.prune_ns + self.group_ns + self.merge_ns + self.quantize_ns + self.pack_ns
    }
}

/// Wire layout of one group, mirroring `age-core`'s `GroupLayout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupRecord {
    /// Measurements covered by this group.
    pub count: usize,
    /// Shared exponent.
    pub exponent: i32,
    /// Mantissa width in bits.
    pub width: u8,
}

/// One encoded batch, as observed by the instrumented encoder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchRecord {
    /// Encoder that produced the message (`"age"`, `"standard"`, `"padded"`, …).
    pub encoder: &'static str,
    /// Caller-assigned stream label (dataset/defense/node id); empty if unset.
    pub label: String,
    /// Batch sequence number within the stream (caller-assigned).
    pub batch: u64,
    /// Ground-truth event label active while this batch was produced, if
    /// the caller published one (see `sink::set_context_event`). This is
    /// what the leakage audit correlates message sizes against.
    pub event: Option<usize>,
    /// Virtual time (simulated microseconds) at which this batch's sensing
    /// window closed, as published by the caller via
    /// `sink::set_context_vtime`. 0 when the producer runs without a
    /// virtual clock (unit tests, direct encoder use). Unlike `timings`
    /// this is fully deterministic — see `docs/observability.md`.
    pub virtual_time: u64,
    /// Measurements handed to the encoder.
    pub input_len: usize,
    /// Measurements surviving pruning (== `input_len` for baselines).
    pub kept_len: usize,
    /// Groups before merging (0 for baselines).
    pub groups_initial: usize,
    /// Groups actually emitted.
    pub groups_final: usize,
    /// Per-group layout of the emitted message.
    pub groups: Vec<GroupRecord>,
    /// Header size in bits.
    pub header_bits: usize,
    /// Group-directory size in bits.
    pub directory_bits: usize,
    /// Mantissa payload size in bits.
    pub data_bits: usize,
    /// Trailing padding in bits.
    pub padding_bits: usize,
    /// Final message length in bytes (must equal the buffer length).
    pub message_len: usize,
    /// Configured target size in bytes, if the encoder pads to one.
    pub target_bytes: Option<usize>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl BatchRecord {
    /// Serializes as one compact JSON object (no trailing newline).
    ///
    /// Field order is fixed so identical records serialize to identical
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_str_field(&mut out, "encoder", self.encoder);
        out.push(',');
        push_str_field(&mut out, "label", &self.label);
        out.push(',');
        push_u64_field(&mut out, "batch", self.batch);
        out.push_str(",\"event\":");
        match self.event {
            Some(e) => out.push_str(&e.to_string()),
            None => out.push_str("null"),
        }
        out.push(',');
        push_u64_field(&mut out, "virtual_time", self.virtual_time);
        out.push(',');
        push_u64_field(&mut out, "input_len", self.input_len as u64);
        out.push(',');
        push_u64_field(&mut out, "kept_len", self.kept_len as u64);
        out.push(',');
        push_u64_field(&mut out, "groups_initial", self.groups_initial as u64);
        out.push(',');
        push_u64_field(&mut out, "groups_final", self.groups_final as u64);
        out.push_str(",\"groups\":[");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_u64_field(&mut out, "count", g.count as u64);
            out.push(',');
            push_i64_field(&mut out, "exponent", i64::from(g.exponent));
            out.push(',');
            push_u64_field(&mut out, "width", u64::from(g.width));
            out.push('}');
        }
        out.push(']');
        out.push(',');
        push_u64_field(&mut out, "header_bits", self.header_bits as u64);
        out.push(',');
        push_u64_field(&mut out, "directory_bits", self.directory_bits as u64);
        out.push(',');
        push_u64_field(&mut out, "data_bits", self.data_bits as u64);
        out.push(',');
        push_u64_field(&mut out, "padding_bits", self.padding_bits as u64);
        out.push(',');
        push_u64_field(&mut out, "message_len", self.message_len as u64);
        out.push_str(",\"target_bytes\":");
        match self.target_bytes {
            Some(t) => out.push_str(&t.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"timings_ns\":{");
        push_u64_field(&mut out, "prune", self.timings.prune_ns);
        out.push(',');
        push_u64_field(&mut out, "group", self.timings.group_ns);
        out.push(',');
        push_u64_field(&mut out, "merge", self.timings.merge_ns);
        out.push(',');
        push_u64_field(&mut out, "quantize", self.timings.quantize_ns);
        out.push(',');
        push_u64_field(&mut out, "pack", self.timings.pack_ns);
        out.push_str("}}");
        out
    }

    /// Parses a line produced by [`to_json`](Self::to_json) back into a
    /// record — the schema round-trip the JSONL determinism tests pin down.
    ///
    /// Returns `None` on any schema mismatch, including an encoder name
    /// that is not one of the workspace's known encoders (`encoder` is a
    /// `&'static str`, so arbitrary strings cannot be represented).
    pub fn from_json(json: &str) -> Option<BatchRecord> {
        let encoder = intern_encoder(&parse_str_field(json, "encoder")?)?;
        let groups_src = slice_between(json, "\"groups\":[", "]")?;
        let mut groups = Vec::new();
        if !groups_src.is_empty() {
            for g in groups_src.split("},") {
                groups.push(GroupRecord {
                    count: parse_u64_field(g, "count")? as usize,
                    exponent: parse_i64_field(g, "exponent")? as i32,
                    width: parse_u64_field(g, "width")? as u8,
                });
            }
        }
        let timings = slice_between(json, "\"timings_ns\":{", "}")?;
        Some(BatchRecord {
            encoder,
            label: parse_str_field(json, "label")?,
            batch: parse_u64_field(json, "batch")?,
            event: parse_opt_u64_field(json, "event")?.map(|e| e as usize),
            virtual_time: parse_u64_field_or(json, "virtual_time", 0)?,
            input_len: parse_u64_field(json, "input_len")? as usize,
            kept_len: parse_u64_field(json, "kept_len")? as usize,
            groups_initial: parse_u64_field(json, "groups_initial")? as usize,
            groups_final: parse_u64_field(json, "groups_final")? as usize,
            groups,
            header_bits: parse_u64_field(json, "header_bits")? as usize,
            directory_bits: parse_u64_field(json, "directory_bits")? as usize,
            data_bits: parse_u64_field(json, "data_bits")? as usize,
            padding_bits: parse_u64_field(json, "padding_bits")? as usize,
            message_len: parse_u64_field(json, "message_len")? as usize,
            target_bytes: parse_opt_u64_field(json, "target_bytes")?.map(|t| t as usize),
            timings: StageTimings {
                prune_ns: parse_u64_field(timings, "prune")?,
                group_ns: parse_u64_field(timings, "group")?,
                merge_ns: parse_u64_field(timings, "merge")?,
                quantize_ns: parse_u64_field(timings, "quantize")?,
                pack_ns: parse_u64_field(timings, "pack")?,
            },
        })
    }
}

/// One sealed frame as an eavesdropper on the link would see it: which
/// stream sent it, the ground-truth event active at the time, and the exact
/// on-air size in bytes. This — not the plaintext encoding — is what the
/// leakage audit correlates against labels.
#[cfg(feature = "audit")]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireRecord {
    /// Stream label from the thread context (dataset/policy/defense/rate).
    pub label: String,
    /// Defense/encoder name (`"Std"`, `"AGE"`, `"Padded"`, …). Owned so
    /// records survive JSON round-trips.
    pub encoder: String,
    /// Transmit sequence number within the stream.
    pub seq: u64,
    /// Ground-truth event label for the batch this frame carried.
    pub event: usize,
    /// Sealed frame length in bytes on the wire.
    pub wire_bytes: usize,
    /// Key epoch the frame was sealed in: the scope within which `seq`
    /// must be unique for nonce uniqueness to hold (one epoch per cell
    /// run; empty when the emitter set none, in which case auditors fall
    /// back to `label`). Appended to the wire-line schema; absent in lines
    /// written by older builds, which parse back as empty.
    pub epoch: String,
    /// Virtual send time in simulated microseconds: when the frame's first
    /// radiation completed on the simulator's deterministic clock (see
    /// `age-sim`'s `VirtualClock`). The timing-channel audit derives
    /// inter-transmission gaps from successive stamps within a stream.
    /// Absent in lines written by older builds, which parse back as 0; a
    /// present-but-malformed or negative value is a schema error.
    pub virtual_time: u64,
}

#[cfg(feature = "audit")]
impl WireRecord {
    /// Serializes as one compact JSON object (no trailing newline), with a
    /// leading `"kind":"wire"` discriminator so wire lines can share a
    /// JSONL file with batch records.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"kind\":\"wire\",");
        push_str_field(&mut out, "label", &self.label);
        out.push(',');
        push_str_field(&mut out, "encoder", &self.encoder);
        out.push(',');
        push_u64_field(&mut out, "seq", self.seq);
        out.push(',');
        push_u64_field(&mut out, "event", self.event as u64);
        out.push(',');
        push_u64_field(&mut out, "wire_bytes", self.wire_bytes as u64);
        out.push(',');
        push_str_field(&mut out, "epoch", &self.epoch);
        out.push(',');
        push_u64_field(&mut out, "virtual_time", self.virtual_time);
        out.push('}');
        out
    }

    /// Whether a JSONL line is a wire record (vs. a batch record).
    pub fn is_wire_line(json: &str) -> bool {
        json.starts_with("{\"kind\":\"wire\",")
    }

    /// Parses a line produced by [`to_json`](Self::to_json).
    pub fn from_json(json: &str) -> Option<WireRecord> {
        if !Self::is_wire_line(json) {
            return None;
        }
        Some(WireRecord {
            label: parse_str_field(json, "label")?,
            encoder: parse_str_field(json, "encoder")?,
            seq: parse_u64_field(json, "seq")?,
            event: parse_u64_field(json, "event")? as usize,
            wire_bytes: parse_u64_field(json, "wire_bytes")? as usize,
            epoch: parse_str_field(json, "epoch").unwrap_or_default(),
            virtual_time: parse_u64_field_or(json, "virtual_time", 0)?,
        })
    }
}

/// Maps an encoder name back to the `&'static str` the workspace's encoders
/// actually emit. A minimal intern table, not a registry: `from_json` only
/// needs to reproduce names `to_json` could have written.
fn intern_encoder(name: &str) -> Option<&'static str> {
    const KNOWN: &[&str] = &[
        "",
        "AGE",
        "Standard",
        "Padded",
        "Single",
        "Unshifted",
        "Pruned",
        "Delta",
        "age",
        "standard",
        "padded",
    ];
    KNOWN.iter().find(|&&k| k == name).copied()
}

/// The raw text of `"key":<value>` within a flat JSON object slice, up to
/// the next comma or closing brace. Only valid for non-string values.
fn raw_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(&rest[..end])
}

fn parse_u64_field(json: &str, key: &str) -> Option<u64> {
    raw_value(json, key)?.parse().ok()
}

/// Like [`parse_u64_field`] but treats an *absent* key as `default` (legacy
/// tolerance for fields appended to the schema later). A key that is present
/// but malformed — including negative values, which `u64` parsing rejects —
/// is still a schema error (`None`).
fn parse_u64_field_or(json: &str, key: &str, default: u64) -> Option<u64> {
    match raw_value(json, key) {
        None => Some(default),
        Some(raw) => raw.parse().ok(),
    }
}

fn parse_i64_field(json: &str, key: &str) -> Option<i64> {
    raw_value(json, key)?.parse().ok()
}

/// Parses `"key":N` as `Some(N)` and `"key":null` as `None`; a missing or
/// malformed field is a schema error (outer `None`).
#[allow(clippy::option_option)]
fn parse_opt_u64_field(json: &str, key: &str) -> Option<Option<u64>> {
    let raw = raw_value(json, key)?;
    if raw == "null" {
        Some(None)
    } else {
        raw.parse().ok().map(Some)
    }
}

/// Parses `"key":"value"`, undoing the escapes `push_str_field` applies.
fn parse_str_field(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = json.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = json[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (&mut chars).take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// The text between `start` and the next `end` after it.
fn slice_between<'a>(json: &'a str, start: &str, end: &str) -> Option<&'a str> {
    let from = json.find(start)? + start.len();
    let to = json[from..].find(end)?;
    Some(&json[from..from + to])
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_i64_field(out: &mut String, key: &str, value: i64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchRecord {
        BatchRecord {
            encoder: "age",
            label: "mimic/age".into(),
            batch: 3,
            event: Some(2),
            virtual_time: 1_280_000,
            input_len: 64,
            kept_len: 41,
            groups_initial: 9,
            groups_final: 4,
            groups: vec![
                GroupRecord {
                    count: 20,
                    exponent: -3,
                    width: 7,
                },
                GroupRecord {
                    count: 21,
                    exponent: 0,
                    width: 9,
                },
            ],
            header_bits: 24,
            directory_bits: 48,
            data_bits: 329,
            padding_bits: 15,
            message_len: 52,
            target_bytes: Some(52),
            timings: StageTimings {
                prune_ns: 100,
                group_ns: 200,
                merge_ns: 300,
                quantize_ns: 400,
                pack_ns: 500,
            },
        }
    }

    #[test]
    fn json_is_stable_and_complete() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"encoder\":\"age\"",
            "\"label\":\"mimic/age\"",
            "\"batch\":3",
            "\"virtual_time\":1280000",
            "\"input_len\":64",
            "\"kept_len\":41",
            "\"groups_initial\":9",
            "\"groups_final\":4",
            "\"exponent\":-3",
            "\"message_len\":52",
            "\"target_bytes\":52",
            "\"prune\":100",
            "\"pack\":500",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Identical records serialize identically.
        assert_eq!(json, sample().to_json());
    }

    #[test]
    fn json_escapes_strings_and_encodes_null_target() {
        let mut rec = sample();
        rec.label = "a\"b\\c\nd".into();
        rec.target_bytes = None;
        let json = rec.to_json();
        assert!(json.contains("\"label\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"target_bytes\":null"));
    }

    #[test]
    fn stage_total_sums_all_stages() {
        assert_eq!(sample().timings.total_ns(), 1500);
    }

    #[test]
    fn json_serializes_event_field() {
        let json = sample().to_json();
        assert!(json.contains("\"event\":2"), "{json}");
        let mut rec = sample();
        rec.event = None;
        assert!(rec.to_json().contains("\"event\":null"));
    }

    #[test]
    fn batch_record_round_trips_through_json() {
        let original = sample();
        let parsed = BatchRecord::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
        // Null event and target, empty groups, escaped label.
        let mut tricky = sample();
        tricky.encoder = "AGE";
        tricky.event = None;
        tricky.target_bytes = None;
        tricky.groups.clear();
        tricky.label = "a\"b\\c\nd".into();
        let parsed = BatchRecord::from_json(&tricky.to_json()).unwrap();
        assert_eq!(parsed, tricky);
        // An unknown encoder name cannot be interned.
        assert!(BatchRecord::from_json(
            &sample()
                .to_json()
                .replace("\"encoder\":\"age\"", "\"encoder\":\"mystery\"")
        )
        .is_none());
    }

    #[test]
    fn batch_virtual_time_tolerates_absence_but_rejects_malformation() {
        let json = sample().to_json();
        // Lines from builds that predate the field parse back as t = 0.
        let legacy = json.replace(",\"virtual_time\":1280000", "");
        assert_ne!(legacy, json);
        assert_eq!(BatchRecord::from_json(&legacy).unwrap().virtual_time, 0);
        // A present-but-negative timestamp is a schema error, not a wrap.
        let negative = json.replace("\"virtual_time\":1280000", "\"virtual_time\":-1280000");
        assert!(BatchRecord::from_json(&negative).is_none());
        // So is any other malformed value.
        let garbled = json.replace("\"virtual_time\":1280000", "\"virtual_time\":12e5");
        assert!(BatchRecord::from_json(&garbled).is_none());
    }

    #[cfg(feature = "audit")]
    #[test]
    fn wire_record_round_trips_through_json() {
        let original = WireRecord {
            label: "epi/Linear/Std/r0.50".into(),
            encoder: "Std".into(),
            seq: 41,
            event: 2,
            wire_bytes: 86,
            epoch: "epi/Linear/Std/r0.50#3".into(),
            virtual_time: 5_521_984,
        };
        let json = original.to_json();
        assert!(WireRecord::is_wire_line(&json));
        assert_eq!(WireRecord::from_json(&json).unwrap(), original);
        assert_eq!(json, original.to_json());
        // Wire lines written before the epoch field existed still parse,
        // with the epoch reading back empty.
        let legacy = json.replace(",\"epoch\":\"epi/Linear/Std/r0.50#3\"", "");
        assert_ne!(legacy, json);
        let parsed = WireRecord::from_json(&legacy).unwrap();
        assert_eq!(parsed.epoch, "");
        assert_eq!(parsed.seq, original.seq);
        // Batch-record lines are rejected.
        assert!(WireRecord::from_json(&sample().to_json()).is_none());
        assert!(!WireRecord::is_wire_line(&sample().to_json()));
    }

    #[cfg(feature = "audit")]
    #[test]
    fn wire_virtual_time_tolerates_absence_but_rejects_malformation() {
        let original = WireRecord {
            label: "s".into(),
            encoder: "AGE".into(),
            seq: 0,
            event: 1,
            wire_bytes: 118,
            epoch: "s#0".into(),
            virtual_time: 90_210,
        };
        let json = original.to_json();
        // Wire lines from before the timing channel parse back as t = 0.
        let legacy = json.replace(",\"virtual_time\":90210", "");
        assert_ne!(legacy, json);
        assert_eq!(WireRecord::from_json(&legacy).unwrap().virtual_time, 0);
        // Present-but-negative or otherwise malformed stamps are rejected.
        for bad in ["\"virtual_time\":-90210", "\"virtual_time\":9o210"] {
            let garbled = json.replace("\"virtual_time\":90210", bad);
            assert!(WireRecord::from_json(&garbled).is_none(), "{garbled}");
        }
    }
}
