//! Streaming leakage monitor: per-window NMI scoring and deterministic
//! mid-run alarms.
//!
//! Every audit elsewhere in the workspace is an end-of-run batch
//! verdict — the [`LeakageGate`](crate::LeakageGate) only speaks after
//! the whole trace has drained. This module scores the same two
//! channels (wire size and inter-transmission gap, labeled by event
//! class) over **tumbling virtual-time windows**, so a regression that
//! starts at minute one of a long ingest raises an alarm at minute one,
//! not at the post-run gate.
//!
//! Design constraints, in order:
//!
//! 1. **Commutative merge.** A [`WindowedMonitor`] lives inside each
//!    gateway shard; the fleet-level monitor is the fold of the shard
//!    monitors via [`WindowedMonitor::absorb`]. Window counts are plain
//!    sums and the watermark is a max, so the merged monitor — and every
//!    alarm scored from it — is byte-identical at any shard or thread
//!    count.
//! 2. **Deterministic alarms.** [`WindowedMonitor::alarms`] is a pure
//!    function of merged window counts, a [`MonitorConfig`], and a seed.
//!    Permutation p-values use a per-(window, stream) seed derived with
//!    the same splitmix constant the rest of the workspace uses.
//! 3. **Cheap ingest.** Frames arrive in virtual-time order within a
//!    shard, so observations hit a "current window" fast path: scalar
//!    counter bumps plus one or two small-map increments. The window's
//!    joint counts are only expanded into a
//!    [`LeakageStream`] at scoring time, and
//!    p-values are only computed for windows whose NMI already crossed
//!    the threshold.
//!
//! Alarm semantics mirror the end-of-run gate: a **size** alarm needs
//! window NMI above the threshold on a defended stream with enough
//! observations; a **timing** alarm additionally needs a significant
//! permutation p-value (gap histograms are noisy; NMI alone would
//! false-alarm on short windows); a **rejection-rate** alarm is
//! channel-independent plumbing health (an auth-failure flood, a replay
//! storm) over the same windows.

use std::collections::BTreeMap;
use std::fmt;

use crate::leakage::LeakageStream;

/// Thresholds and window shape for the streaming monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Tumbling window width in virtual microseconds (0 behaves as 1).
    pub window_us: u64,
    /// Window NMI above this on a defended stream is a leak.
    pub nmi_threshold: f64,
    /// Timing alarms additionally require a permutation p-value at or
    /// below this.
    pub p_threshold: f64,
    /// Windows with fewer observations on a channel are never scored:
    /// small-sample NMI is dominated by estimator bias.
    pub min_observations: u64,
    /// Permutations for the p-value (only run when NMI already crossed
    /// the threshold).
    pub permutations: usize,
    /// Rejected/arrived above this ratio in a window raises a
    /// rejection-rate alarm.
    pub max_rejection_rate: f64,
    /// Windows with fewer arrivals than this are never rate-checked.
    pub min_frames: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window_us: 1_000_000,
            nmi_threshold: 0.05,
            p_threshold: 0.05,
            min_observations: 30,
            permutations: 100,
            max_rejection_rate: 0.25,
            min_frames: 50,
        }
    }
}

/// Arrival counters for one window (all streams pooled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowTraffic {
    /// Datagrams that arrived in the window, accepted or not.
    pub frames: u64,
    /// Arrivals that were accepted.
    pub accepted: u64,
    /// Arrivals that were rejected at any rung.
    pub rejected: u64,
}

impl WindowTraffic {
    fn note(&mut self, accepted: bool) {
        self.frames += 1;
        if accepted {
            self.accepted += 1;
        } else {
            self.rejected += 1;
        }
    }

    fn add(&mut self, other: &WindowTraffic) {
        self.frames += other.frames;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
    }

    /// Fraction of arrivals rejected (0 when the window is empty).
    pub fn rejection_rate(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        self.rejected as f64 / self.frames as f64
    }
}

/// Joint `(event, value)` counts for one stream in one window — the
/// size channel and the gap channel, kept as bare maps so the ingest
/// path pays one ordered-map increment instead of a full
/// [`LeakageStream`] update (marginals are reconstructed at scoring
/// time).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct WindowCounts {
    sizes: BTreeMap<(usize, usize), u64>,
    gaps: BTreeMap<(usize, usize), u64>,
}

impl WindowCounts {
    fn is_empty(&self) -> bool {
        self.sizes.is_empty() && self.gaps.is_empty()
    }

    fn add(&mut self, other: &WindowCounts) {
        for (&k, &n) in &other.sizes {
            *self.sizes.entry(k).or_insert(0) += n;
        }
        for (&k, &n) in &other.gaps {
            *self.gaps.entry(k).or_insert(0) += n;
        }
    }
}

/// Expands joint counts into a scoreable stream.
fn stream_of(counts: &BTreeMap<(usize, usize), u64>) -> LeakageStream {
    let mut stream = LeakageStream::new();
    for (&(label, value), &n) in counts {
        stream.observe_n(label, value, n);
    }
    stream
}

/// The NMI scores of one stream in one closed window (no p-values —
/// those are computed lazily by [`WindowedMonitor::alarms`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowScore {
    /// Window index (`virtual time / window_us`).
    pub window: u64,
    /// Stream id the score belongs to (the caller's cohort index).
    pub stream: usize,
    /// Size-channel observations in the window.
    pub observations: u64,
    /// Distinct wire sizes seen in the window.
    pub distinct_sizes: usize,
    /// Size-channel NMI for the window.
    pub nmi: f64,
    /// Gap-channel observations in the window.
    pub gap_observations: u64,
    /// Distinct gap values seen in the window.
    pub distinct_gaps: usize,
    /// Gap-channel NMI for the window.
    pub timing_nmi: f64,
}

/// Which invariant a mid-run alarm saw violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlarmKind {
    /// A defended stream's wire sizes correlated with the event class.
    SizeLeak,
    /// A defended stream's transmission gaps correlated with the event
    /// class (significant under permutation).
    TimingLeak,
    /// Too large a fraction of arrivals was rejected.
    RejectionRate,
}

impl AlarmKind {
    /// Stable lowercase name used in JSON and log lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlarmKind::SizeLeak => "size-leak",
            AlarmKind::TimingLeak => "timing-leak",
            AlarmKind::RejectionRate => "rejection-rate",
        }
    }
}

/// One deterministic mid-run alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// What tripped.
    pub kind: AlarmKind,
    /// Window index the violation was observed in.
    pub window: u64,
    /// Window start, virtual microseconds.
    pub start_us: u64,
    /// Window end (exclusive), virtual microseconds.
    pub end_us: u64,
    /// Stream name for leak alarms; `"fleet"` for rate alarms.
    pub stream: String,
    /// Offending value: NMI for leaks, rejection ratio for rate alarms.
    pub value: f64,
    /// Permutation p-value (1.0 where not applicable).
    pub p_value: f64,
    /// Observations behind the score (channel observations for leaks,
    /// arrivals for rate alarms).
    pub observations: u64,
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ALARM {} stream={} window={} [{}..{}us) value={:.4} p={:.4} n={}",
            self.kind.as_str(),
            self.stream,
            self.window,
            self.start_us,
            self.end_us,
            self.value,
            self.p_value,
            self.observations,
        )
    }
}

/// Per-(window, stream) seed for the permutation test: the monitor
/// seed mixed with the window index and stream id through the
/// workspace's splitmix constant, so alarm p-values are stable across
/// shard counts, thread counts, and scoring order.
fn window_seed(seed: u64, window: u64, stream: usize) -> u64 {
    seed ^ window
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((stream as u64).wrapping_mul(0x0000_0100_0000_01b3))
}

/// Tumbling-window joint histograms for one shard (or, after
/// [`absorb`](WindowedMonitor::absorb), the fleet).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedMonitor {
    window_us: u64,
    /// Window currently being filled by the fast path.
    current_window: u64,
    current_traffic: WindowTraffic,
    current_streams: Vec<WindowCounts>,
    /// Closed (or out-of-order) windows.
    traffic: BTreeMap<u64, WindowTraffic>,
    streams: BTreeMap<(u64, usize), WindowCounts>,
    watermark_us: u64,
}

impl WindowedMonitor {
    /// A monitor over `streams` stream ids with the given window width.
    pub fn new(window_us: u64, streams: usize) -> WindowedMonitor {
        WindowedMonitor {
            window_us: window_us.max(1),
            current_window: 0,
            current_traffic: WindowTraffic::default(),
            current_streams: vec![WindowCounts::default(); streams],
            traffic: BTreeMap::new(),
            streams: BTreeMap::new(),
            watermark_us: 0,
        }
    }

    /// The window width in virtual microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// The window index a virtual timestamp falls into.
    pub fn window_of(&self, vtime_us: u64) -> u64 {
        vtime_us / self.window_us
    }

    /// `[start, end)` bounds of a window in virtual microseconds.
    pub fn window_bounds(&self, window: u64) -> (u64, u64) {
        (
            window.saturating_mul(self.window_us),
            window.saturating_add(1).saturating_mul(self.window_us),
        )
    }

    /// Highest virtual timestamp observed (a commutative max).
    pub fn watermark_us(&self) -> u64 {
        self.watermark_us
    }

    /// Advances the fast path to `window`, retiring the previous
    /// current window into the closed maps.
    fn roll(&mut self, vtime_us: u64) {
        self.watermark_us = self.watermark_us.max(vtime_us);
        let window = self.window_of(vtime_us);
        if window > self.current_window {
            self.flush_current();
            self.current_window = window;
        }
    }

    fn flush_current(&mut self) {
        if self.current_traffic != WindowTraffic::default() {
            self.traffic
                .entry(self.current_window)
                .or_default()
                .add(&std::mem::take(&mut self.current_traffic));
        }
        for stream in 0..self.current_streams.len() {
            if self.current_streams[stream].is_empty() {
                continue;
            }
            let counts = std::mem::take(&mut self.current_streams[stream]);
            let slot = self
                .streams
                .entry((self.current_window, stream))
                .or_default();
            if slot.is_empty() {
                *slot = counts;
            } else {
                slot.add(&counts);
            }
        }
    }

    /// Counts one arrival (accepted or not) into its window.
    pub fn observe_frame(&mut self, vtime_us: u64, accepted: bool) {
        self.roll(vtime_us);
        if self.window_of(vtime_us) == self.current_window {
            self.current_traffic.note(accepted);
        } else {
            // Out-of-order arrival behind the current window: slow path.
            self.traffic
                .entry(self.window_of(vtime_us))
                .or_default()
                .note(accepted);
        }
    }

    /// Records one accepted frame's size (and, when the session had a
    /// previous accept with an advancing stamp, its transmission gap)
    /// into the stream's window histograms.
    pub fn observe_accepted(
        &mut self,
        stream: usize,
        event: usize,
        wire_bytes: usize,
        gap_us: Option<u64>,
        vtime_us: u64,
    ) {
        self.roll(vtime_us);
        let window = self.window_of(vtime_us);
        let counts = if window == self.current_window {
            match self.current_streams.get_mut(stream) {
                Some(counts) => counts,
                None => return,
            }
        } else {
            self.streams.entry((window, stream)).or_default()
        };
        *counts.sizes.entry((event, wire_bytes)).or_insert(0) += 1;
        if let Some(gap) = gap_us {
            *counts.gaps.entry((event, gap as usize)).or_insert(0) += 1;
        }
    }

    /// Folds another monitor's windows into this one. Window counts are
    /// sums and the watermark is a max, so absorption is commutative
    /// and associative — the fleet monitor is identical however the
    /// shard monitors are combined.
    pub fn absorb(&mut self, other: &WindowedMonitor) {
        self.watermark_us = self.watermark_us.max(other.watermark_us);
        for (&window, traffic) in &other.traffic {
            self.traffic.entry(window).or_default().add(traffic);
        }
        if other.current_traffic != WindowTraffic::default() {
            self.traffic
                .entry(other.current_window)
                .or_default()
                .add(&other.current_traffic);
        }
        for (&key, counts) in &other.streams {
            self.streams.entry(key).or_default().add(counts);
        }
        for (stream, counts) in other.current_streams.iter().enumerate() {
            if !counts.is_empty() {
                self.streams
                    .entry((other.current_window, stream))
                    .or_default()
                    .add(counts);
            }
        }
    }

    /// Pooled arrival counters for one window.
    pub fn traffic_in(&self, window: u64) -> WindowTraffic {
        let mut total = self.traffic.get(&window).copied().unwrap_or_default();
        if window == self.current_window {
            total.add(&self.current_traffic);
        }
        total
    }

    fn counts_in(&self, window: u64, stream: usize) -> Option<WindowCounts> {
        let mut merged = self
            .streams
            .get(&(window, stream))
            .cloned()
            .unwrap_or_default();
        if window == self.current_window {
            if let Some(current) = self.current_streams.get(stream) {
                merged.add(current);
            }
        }
        if merged.is_empty() {
            None
        } else {
            Some(merged)
        }
    }

    /// Scores one stream's channels in one window; `None` if the stream
    /// saw nothing there.
    pub fn score(&self, window: u64, stream: usize) -> Option<WindowScore> {
        let counts = self.counts_in(window, stream)?;
        let sizes = stream_of(&counts.sizes);
        let gaps = stream_of(&counts.gaps);
        Some(WindowScore {
            window,
            stream,
            observations: sizes.total(),
            distinct_sizes: sizes.distinct_sizes(),
            nmi: sizes.nmi(),
            gap_observations: gaps.total(),
            distinct_gaps: gaps.distinct_sizes(),
            timing_nmi: gaps.nmi(),
        })
    }

    /// Evaluates windows `from_window..to_window` (which the caller
    /// knows to be fully closed) against the config and returns every
    /// alarm, ordered by `(window, kind, stream)`. `names` maps stream
    /// ids to report names; only ids in `defended` are leak-checked.
    /// Permutation p-values are seeded per `(window, stream)` from
    /// `seed`, so the result is a pure function of the merged window
    /// counts — byte-identical at any shard or thread count.
    pub fn alarms(
        &self,
        config: &MonitorConfig,
        names: &[&str],
        defended: &[usize],
        seed: u64,
        from_window: u64,
        to_window: u64,
    ) -> Vec<Alarm> {
        let mut alarms = Vec::new();
        for window in from_window..to_window {
            let (start_us, end_us) = self.window_bounds(window);
            let traffic = self.traffic_in(window);
            if traffic.frames >= config.min_frames
                && traffic.rejection_rate() > config.max_rejection_rate
            {
                alarms.push(Alarm {
                    kind: AlarmKind::RejectionRate,
                    window,
                    start_us,
                    end_us,
                    stream: "fleet".to_string(),
                    value: traffic.rejection_rate(),
                    p_value: 1.0,
                    observations: traffic.frames,
                });
            }
            for &stream in defended {
                let Some(counts) = self.counts_in(window, stream) else {
                    continue;
                };
                let name = names.get(stream).copied().unwrap_or("?");
                let sizes = stream_of(&counts.sizes);
                if sizes.total() >= config.min_observations && sizes.nmi() > config.nmi_threshold {
                    alarms.push(Alarm {
                        kind: AlarmKind::SizeLeak,
                        window,
                        start_us,
                        end_us,
                        stream: name.to_string(),
                        value: sizes.nmi(),
                        p_value: sizes
                            .permutation_p(config.permutations, window_seed(seed, window, stream)),
                        observations: sizes.total(),
                    });
                }
                let gaps = stream_of(&counts.gaps);
                if gaps.total() >= config.min_observations && gaps.nmi() > config.nmi_threshold {
                    let p = gaps.permutation_p(
                        config.permutations,
                        window_seed(seed, window, stream) ^ 0x5851_f42d_4c95_7f2d,
                    );
                    if p <= config.p_threshold {
                        alarms.push(Alarm {
                            kind: AlarmKind::TimingLeak,
                            window,
                            start_us,
                            end_us,
                            stream: name.to_string(),
                            value: gaps.nmi(),
                            p_value: p,
                            observations: gaps.total(),
                        });
                    }
                }
            }
        }
        alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 1_000; // 1 ms windows keep test timestamps small.

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            window_us: W,
            min_observations: 10,
            min_frames: 10,
            permutations: 50,
            ..MonitorConfig::default()
        }
    }

    fn names() -> Vec<&'static str> {
        vec!["AGE", "Std"]
    }

    #[test]
    fn windows_partition_virtual_time() {
        let m = WindowedMonitor::new(W, 1);
        assert_eq!(m.window_of(0), 0);
        assert_eq!(m.window_of(W - 1), 0);
        assert_eq!(m.window_of(W), 1);
        assert_eq!(m.window_bounds(3), (3 * W, 4 * W));
    }

    #[test]
    fn constant_size_stream_never_alarms() {
        let mut m = WindowedMonitor::new(W, 2);
        for i in 0..60u64 {
            let t = i * 50;
            m.observe_frame(t, true);
            m.observe_accepted(0, (i % 3) as usize, 160, Some(250), t);
        }
        let alarms = m.alarms(
            &cfg(),
            &names(),
            &[0],
            7,
            0,
            m.window_of(m.watermark_us()) + 1,
        );
        assert!(alarms.is_empty(), "constant sizes alarmed: {alarms:?}");
    }

    #[test]
    fn event_correlated_sizes_trip_a_size_alarm_in_the_right_window() {
        let mut m = WindowedMonitor::new(W, 2);
        // Window 0: constant. Window 1: size = f(event) — a leak.
        for i in 0..30u64 {
            m.observe_accepted(0, (i % 3) as usize, 160, None, i * 30);
        }
        for i in 0..30u64 {
            let event = (i % 3) as usize;
            m.observe_accepted(0, event, 100 + 40 * event, None, W + i * 30);
        }
        let alarms = m.alarms(&cfg(), &names(), &[0], 7, 0, 2);
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert_eq!(alarms[0].kind, AlarmKind::SizeLeak);
        assert_eq!(alarms[0].window, 1);
        assert_eq!(alarms[0].stream, "AGE");
        assert!(alarms[0].value > 0.9);
    }

    #[test]
    fn event_correlated_gaps_trip_a_timing_alarm() {
        let mut m = WindowedMonitor::new(W, 1);
        for i in 0..40u64 {
            let event = (i % 3) as usize;
            m.observe_accepted(0, event, 160, Some(200 + 100 * event as u64), i * 20);
        }
        let alarms = m.alarms(&cfg(), &names(), &[0], 7, 0, 1);
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert_eq!(alarms[0].kind, AlarmKind::TimingLeak);
        assert!(alarms[0].p_value <= 0.05);
    }

    #[test]
    fn undefended_streams_are_not_leak_checked() {
        let mut m = WindowedMonitor::new(W, 2);
        for i in 0..30u64 {
            let event = (i % 3) as usize;
            // Stream 1 (the Std baseline) leaks blatantly.
            m.observe_accepted(1, event, 50 + 90 * event, None, i * 30);
        }
        assert!(m.alarms(&cfg(), &names(), &[0], 7, 0, 1).is_empty());
        assert_eq!(m.alarms(&cfg(), &names(), &[0, 1], 7, 0, 1).len(), 1);
    }

    #[test]
    fn rejection_flood_trips_a_rate_alarm() {
        let mut m = WindowedMonitor::new(W, 1);
        for i in 0..40u64 {
            m.observe_frame(i * 20, i % 2 == 0);
        }
        let alarms = m.alarms(&cfg(), &names(), &[0], 7, 0, 1);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].kind, AlarmKind::RejectionRate);
        assert!((alarms[0].value - 0.5).abs() < 1e-9);
        assert_eq!(alarms[0].observations, 40);
    }

    #[test]
    fn sparse_windows_stay_below_the_observation_floor() {
        let mut m = WindowedMonitor::new(W, 1);
        // A blatant leak, but only 6 observations: below min_observations.
        for i in 0..6u64 {
            let event = (i % 3) as usize;
            m.observe_accepted(0, event, 100 + 40 * event, None, i * 30);
        }
        assert!(m.alarms(&cfg(), &names(), &[0], 7, 0, 1).is_empty());
    }

    /// The determinism contract: any partition of the observations into
    /// shard-local monitors absorbs to the same scores and alarms.
    #[test]
    fn absorb_matches_single_writer() {
        let observations: Vec<(usize, usize, usize, Option<u64>, u64)> = (0..200u64)
            .map(|i| {
                let stream = (i % 2) as usize;
                let event = (i % 3) as usize;
                let size = if stream == 0 { 160 } else { 60 + 20 * event };
                (stream, event, size, Some(100 + 30 * i % 7), i * 37)
            })
            .collect();
        let mut single = WindowedMonitor::new(W, 2);
        let mut a = WindowedMonitor::new(W, 2);
        let mut b = WindowedMonitor::new(W, 2);
        for (i, &(stream, event, size, gap, t)) in observations.iter().enumerate() {
            single.observe_frame(t, true);
            single.observe_accepted(stream, event, size, gap, t);
            let part = if i % 3 == 0 { &mut a } else { &mut b };
            part.observe_frame(t, true);
            part.observe_accepted(stream, event, size, gap, t);
        }
        let mut merged = WindowedMonitor::new(W, 2);
        merged.absorb(&b);
        merged.absorb(&a);
        let last = single.window_of(single.watermark_us()) + 1;
        assert_eq!(merged.watermark_us(), single.watermark_us());
        for w in 0..last {
            assert_eq!(merged.traffic_in(w), single.traffic_in(w), "window {w}");
            for stream in 0..2 {
                assert_eq!(
                    merged.score(w, stream),
                    single.score(w, stream),
                    "window {w} stream {stream}"
                );
            }
        }
        assert_eq!(
            merged.alarms(&cfg(), &names(), &[0, 1], 9, 0, last),
            single.alarms(&cfg(), &names(), &[0, 1], 9, 0, last),
        );
    }

    #[test]
    fn out_of_order_arrivals_land_in_their_own_window() {
        let mut m = WindowedMonitor::new(W, 1);
        m.observe_accepted(0, 0, 160, None, 5 * W);
        // Late arrival for window 0 after the fast path moved on.
        m.observe_accepted(0, 1, 160, None, 10);
        m.observe_frame(5 * W, true);
        m.observe_frame(10, true);
        assert_eq!(m.score(0, 0).map(|s| s.observations), Some(1));
        assert_eq!(m.score(5, 0).map(|s| s.observations), Some(1));
        assert_eq!(m.traffic_in(0).frames, 1);
        assert_eq!(m.traffic_in(5).frames, 1);
    }

    #[test]
    fn alarm_display_is_stable() {
        let alarm = Alarm {
            kind: AlarmKind::TimingLeak,
            window: 3,
            start_us: 3000,
            end_us: 4000,
            stream: "AGE".to_string(),
            value: 0.5,
            p_value: 0.0099,
            observations: 42,
        };
        assert_eq!(
            alarm.to_string(),
            "ALARM timing-leak stream=AGE window=3 [3000..4000us) value=0.5000 p=0.0099 n=42"
        );
    }
}
