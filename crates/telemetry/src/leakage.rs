//! Streaming leakage audit: online NMI between event labels and wire sizes.
//!
//! AGE's security claim is that the sizes of the messages a sensor emits
//! carry no information about the sensed event. The attack crate evaluates
//! that claim offline; this module watches it *while the system runs*. A
//! [`LeakageStream`] maintains the joint empirical distribution of
//! `(event label, wire size)` pairs as counts — never raw traces — so the
//! normalized mutual information and a seeded permutation-test p-value can
//! be computed at any point, online, from O(distinct pairs) state.
//!
//! Everything is count-based and iterated in `BTreeMap` order, so two audits
//! that observed the same multiset of pairs produce bit-identical floats
//! regardless of observation order. That is what lets a parallel sweep merge
//! per-thread audit state and still serialize a byte-identical
//! `LEAKAGE.json` at any thread count.
//!
//! Since the virtual clock landed, the audit watches a second observable:
//! **when** frames are sent. Each stream keeps an inter-transmission-gap
//! histogram (a [`LeakageStream`] over `(event, gap µs)` pairs) scored with
//! the same NMI + permutation machinery, so an adaptive policy that leaks
//! through its transmission schedule instead of its frame sizes is caught
//! by the same gate (`LEAKAGE.json` version 2 carries both verdicts).
//!
//! The math here (entropy, NMI, permutation test) is the single source of
//! truth for the workspace: `age-attack::nmi` delegates to it. The audit
//! plumbing ([`LeakageAudit`], [`LeakageSink`], [`LeakageGate`],
//! [`LeakageReport`]) is gated behind the `audit` cargo feature so
//! MCU-flavored builds compile it out entirely.

use std::collections::BTreeMap;

use crate::rng::{DetRng, SliceShuffle};

/// Shannon entropy (bits) of a discrete empirical distribution given by
/// occurrence counts. Zero counts are ignored; an empty distribution has
/// entropy 0.
pub fn entropy_from_counts<I: IntoIterator<Item = u64>>(counts: I) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Empirical normalized mutual information between paired label/size
/// observations: `2·I(L, M) / (H(L) + H(M))` (paper Eq. 3).
///
/// Degenerate inputs are defined, not errors: empty slices, a single label
/// class, constant sizes, or both return `0.0` — no division by zero, no
/// NaN. The result is clamped to `[0, 1]` against floating-point drift.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nmi_pairs(labels: &[usize], sizes: &[usize]) -> f64 {
    assert_eq!(labels.len(), sizes.len(), "labels/sizes length mismatch");
    let mut stream = LeakageStream::new();
    for (&l, &m) in labels.iter().zip(sizes) {
        stream.observe(l, m);
    }
    stream.nmi()
}

/// Permutation test (Ojala & Garriga) for the significance of the observed
/// NMI of paired label/size observations: shuffles the sizes `permutations`
/// times with a [`DetRng`] seeded by `seed` and returns the estimated
/// p-value with the +1 small-sample correction.
///
/// Degenerate inputs (empty slices or `permutations == 0`) return `1.0`:
/// no evidence against the null.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn permutation_test_pairs(
    labels: &[usize],
    sizes: &[usize],
    permutations: usize,
    seed: u64,
) -> f64 {
    assert_eq!(labels.len(), sizes.len(), "labels/sizes length mismatch");
    if labels.is_empty() || permutations == 0 {
        return 1.0;
    }
    let observed = nmi_pairs(labels, sizes);
    let mut shuffled = sizes.to_vec();
    let mut rng = DetRng::seed_from_u64(seed);
    let mut at_least = 0usize;
    for _ in 0..permutations {
        shuffled.shuffle(&mut rng);
        if nmi_pairs(labels, &shuffled) >= observed - 1e-12 {
            at_least += 1;
        }
    }
    (at_least + 1) as f64 / (permutations + 1) as f64
}

/// The streaming joint distribution of `(event label, wire size)` for one
/// audited stream.
///
/// State is counts keyed by a `BTreeMap`, so [`merge`](Self::merge) is
/// commutative and associative and every derived float is a pure function
/// of the observed multiset — the determinism contract parallel sweeps rely
/// on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LeakageStream {
    joint: BTreeMap<(usize, usize), u64>,
    labels: BTreeMap<usize, u64>,
    sizes: BTreeMap<usize, u64>,
    total: u64,
}

impl LeakageStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed `(label, size)` pair.
    pub fn observe(&mut self, label: usize, size: usize) {
        self.observe_n(label, size, 1);
    }

    /// Records `n` observations of the same `(label, size)` pair.
    pub fn observe_n(&mut self, label: usize, size: usize, n: u64) {
        if n == 0 {
            return;
        }
        *self.joint.entry((label, size)).or_default() += n;
        *self.labels.entry(label).or_default() += n;
        *self.sizes.entry(size).or_default() += n;
        self.total += n;
    }

    /// Folds another stream's counts into this one. Order-independent:
    /// `a.merge(&b)` and `b.merge(&a)` yield equal state.
    pub fn merge(&mut self, other: &LeakageStream) {
        for (&(l, m), &c) in &other.joint {
            self.observe_n(l, m, c);
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct wire sizes seen. `1` is the constant-size
    /// invariant the AGE/Padded defenses must exhibit.
    pub fn distinct_sizes(&self) -> usize {
        self.sizes.len()
    }

    /// Number of distinct event labels seen.
    pub fn distinct_labels(&self) -> usize {
        self.labels.len()
    }

    /// Smallest wire size observed, if any.
    pub fn min_size(&self) -> Option<usize> {
        self.sizes.keys().next().copied()
    }

    /// Largest wire size observed, if any.
    pub fn max_size(&self) -> Option<usize> {
        self.sizes.keys().next_back().copied()
    }

    /// Entropy (bits) of the label marginal.
    pub fn label_entropy(&self) -> f64 {
        entropy_from_counts(self.labels.values().copied())
    }

    /// Entropy (bits) of the size marginal.
    pub fn size_entropy(&self) -> f64 {
        entropy_from_counts(self.sizes.values().copied())
    }

    /// Normalized mutual information `2·I(L,M)/(H(L)+H(M))` of the counts
    /// observed so far. `0.0` for every degenerate case (empty, single
    /// label class, constant sizes); never NaN. Summation runs in map
    /// order, so equal count-state yields bit-identical results.
    pub fn nmi(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let h_l = self.label_entropy();
        let h_m = self.size_entropy();
        if h_l + h_m == 0.0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mut mi = 0.0;
        for (&(l, m), &c) in &self.joint {
            let p_joint = c as f64 / n;
            let p_l = self.labels[&l] as f64 / n;
            let p_m = self.sizes[&m] as f64 / n;
            mi += p_joint * (p_joint / (p_l * p_m)).log2();
        }
        (2.0 * mi / (h_l + h_m)).clamp(0.0, 1.0)
    }

    /// Expands the counts back into paired label/size vectors, in
    /// deterministic (map) order. Used by the permutation test.
    pub fn expand(&self) -> (Vec<usize>, Vec<usize>) {
        let mut labels = Vec::with_capacity(self.total as usize);
        let mut sizes = Vec::with_capacity(self.total as usize);
        for (&(l, m), &c) in &self.joint {
            for _ in 0..c {
                labels.push(l);
                sizes.push(m);
            }
        }
        (labels, sizes)
    }

    /// Seeded permutation-test p-value for the stream's observed NMI.
    /// Returns `1.0` when the stream is empty or `permutations == 0`.
    pub fn permutation_p(&self, permutations: usize, seed: u64) -> f64 {
        if self.total == 0 || permutations == 0 {
            return 1.0;
        }
        let (labels, sizes) = self.expand();
        permutation_test_pairs(&labels, &sizes, permutations, seed)
    }
}

#[cfg(feature = "audit")]
pub use audit::{GateOutcome, LeakageAudit, LeakageEntry, LeakageGate, LeakageReport, LeakageSink};

#[cfg(feature = "audit")]
mod audit {
    use std::collections::BTreeMap;
    use std::fmt;
    use std::sync::Mutex;

    use super::LeakageStream;
    use crate::record::WireRecord;
    use crate::sink::Sink;

    /// Derives a per-stream permutation seed from the run seed and the
    /// stream identity (FNV-1a), so each stream's p-value is independent of
    /// which other streams were audited.
    fn stream_seed(seed: u64, label: &str, encoder: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in label
            .as_bytes()
            .iter()
            .chain(&[0u8])
            .chain(encoder.as_bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ seed
    }

    /// XORed into the per-stream seed for the timing channel's permutation
    /// test, so a stream's size and timing p-values draw independent
    /// shuffles from the same run seed.
    const TIMING_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Per-stream timing-channel state: the `(event, gap µs)` histogram
    /// plus the last send stamp gap extraction resumes from.
    ///
    /// Gaps are extracted in arrival order, which is safe because a stream
    /// (one sweep cell) runs on exactly one thread; sweeps share a single
    /// sink, so nothing ever splits one stream's arrivals across audits. If
    /// the same `(label, encoder)` is re-run later (its clock restarts at
    /// 0), the non-increasing stamp is treated as a stream restart: no gap
    /// is recorded across the seam.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    struct GapState {
        stream: LeakageStream,
        last: Option<u64>,
    }

    /// Run-level audit state: one size [`LeakageStream`] (and, for timed
    /// observations, one gap histogram) per `(stream label, encoder)`,
    /// keyed in sorted order.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct LeakageAudit {
        streams: BTreeMap<(String, String), LeakageStream>,
        gaps: BTreeMap<(String, String), GapState>,
    }

    impl LeakageAudit {
        /// An empty audit.
        pub fn new() -> Self {
            Self::default()
        }

        /// Records one observed wire frame without timing information (the
        /// timing channel sees nothing; use
        /// [`observe_timed`](Self::observe_timed) when a send stamp
        /// exists).
        pub fn observe(&mut self, label: &str, encoder: &str, event: usize, wire_bytes: usize) {
            self.streams
                .entry((label.to_string(), encoder.to_string()))
                .or_default()
                .observe(event, wire_bytes);
        }

        /// Records one observed wire frame together with its virtual send
        /// time. Feeds both channels: the size histogram, and — when this
        /// is not the stream's first frame and the stamp advanced — the
        /// inter-transmission-gap histogram, labeled with the *arriving*
        /// frame's event (the gap ends with, and is shaped by, that
        /// frame's radio serialization and backoff).
        pub fn observe_timed(
            &mut self,
            label: &str,
            encoder: &str,
            event: usize,
            wire_bytes: usize,
            virtual_time: u64,
        ) {
            self.observe(label, encoder, event, wire_bytes);
            let state = self
                .gaps
                .entry((label.to_string(), encoder.to_string()))
                .or_default();
            match state.last {
                Some(prev) if virtual_time > prev => {
                    state.stream.observe(event, (virtual_time - prev) as usize);
                }
                _ => {} // first frame, or a restart (clock went backwards)
            }
            state.last = Some(virtual_time);
        }

        /// Records one [`WireRecord`] as emitted by the sink pipeline.
        /// Records stamped 0 (no clock: legacy lines, bare encoder tests)
        /// contribute to the size channel only.
        pub fn observe_wire(&mut self, record: &WireRecord) {
            if record.virtual_time == 0 {
                self.observe(
                    &record.label,
                    &record.encoder,
                    record.event,
                    record.wire_bytes,
                );
            } else {
                self.observe_timed(
                    &record.label,
                    &record.encoder,
                    record.event,
                    record.wire_bytes,
                    record.virtual_time,
                );
            }
        }

        /// Folds externally collected size and gap histograms into the
        /// `(label, encoder)` stream. This is the entry point for fleet
        /// gateways that keep one histogram pair per sensor session (the
        /// per-`(label, encoder)` [`observe_timed`](Self::observe_timed)
        /// gap state is arrival-order sensitive and would mis-measure
        /// interleaved multi-sensor traffic): sessions extract their own
        /// gaps against their own last-send stamp, and the pre-binned
        /// counts merge here commutatively, so the absorbed audit is
        /// byte-identical at any shard or thread count.
        pub fn absorb(
            &mut self,
            label: &str,
            encoder: &str,
            sizes: &LeakageStream,
            gaps: &LeakageStream,
        ) {
            self.streams
                .entry((label.to_string(), encoder.to_string()))
                .or_default()
                .merge(sizes);
            if gaps.total() > 0 {
                self.gaps
                    .entry((label.to_string(), encoder.to_string()))
                    .or_default()
                    .stream
                    .merge(gaps);
            }
        }

        /// Folds another audit into this one. Commutative, so per-thread
        /// audits merge to the same state in any order. Exact for the
        /// timing channel as long as no single stream's arrivals were split
        /// across the audits (streams are cell-atomic in every sweep, so
        /// this holds by construction; a split stream would lose only the
        /// one gap spanning the split).
        pub fn merge(&mut self, other: &LeakageAudit) {
            for ((label, encoder), stream) in &other.streams {
                self.streams
                    .entry((label.clone(), encoder.clone()))
                    .or_default()
                    .merge(stream);
            }
            for (key, state) in &other.gaps {
                let mine = self.gaps.entry(key.clone()).or_default();
                mine.stream.merge(&state.stream);
                mine.last = mine.last.max(state.last);
            }
        }

        /// The size stream for one `(label, encoder)`, if observed.
        pub fn stream(&self, label: &str, encoder: &str) -> Option<&LeakageStream> {
            self.streams.get(&(label.to_string(), encoder.to_string()))
        }

        /// The gap histogram for one `(label, encoder)`, if any timed
        /// observations arrived.
        pub fn gap_stream(&self, label: &str, encoder: &str) -> Option<&LeakageStream> {
            self.gaps
                .get(&(label.to_string(), encoder.to_string()))
                .map(|state| &state.stream)
        }

        /// All audited streams in sorted key order.
        pub fn streams(&self) -> impl Iterator<Item = (&(String, String), &LeakageStream)> {
            self.streams.iter()
        }

        /// Whether nothing was observed.
        pub fn is_empty(&self) -> bool {
            self.streams.is_empty()
        }

        /// Number of audited `(label, encoder)` streams.
        pub fn len(&self) -> usize {
            self.streams.len()
        }

        /// Scores every stream (NMI + seeded permutation p-value) into a
        /// serializable report. Entries come out in sorted key order and
        /// each stream's permutation seed is derived from `(seed, key)`, so
        /// the report is a pure function of the audit state.
        pub fn report(&self, permutations: usize, seed: u64) -> LeakageReport {
            let entries = self
                .streams
                .iter()
                .map(|(key, stream)| {
                    let (label, encoder) = key;
                    let gaps = self.gaps.get(key).map(|state| &state.stream);
                    LeakageEntry {
                        label: label.clone(),
                        encoder: encoder.clone(),
                        observations: stream.total(),
                        distinct_sizes: stream.distinct_sizes(),
                        min_wire_bytes: stream.min_size().unwrap_or(0),
                        max_wire_bytes: stream.max_size().unwrap_or(0),
                        nmi: stream.nmi(),
                        p_value: stream
                            .permutation_p(permutations, stream_seed(seed, label, encoder)),
                        gap_observations: gaps.map_or(0, LeakageStream::total),
                        distinct_gaps: gaps.map_or(0, LeakageStream::distinct_sizes),
                        min_gap_us: gaps.and_then(LeakageStream::min_size).unwrap_or(0) as u64,
                        max_gap_us: gaps.and_then(LeakageStream::max_size).unwrap_or(0) as u64,
                        timing_nmi: gaps.map_or(0.0, LeakageStream::nmi),
                        timing_p_value: gaps.map_or(1.0, |g| {
                            g.permutation_p(
                                permutations,
                                stream_seed(seed, label, encoder) ^ TIMING_SEED_SALT,
                            )
                        }),
                    }
                })
                .collect();
            LeakageReport {
                permutations,
                seed,
                entries,
                gate: None,
            }
        }
    }

    /// One scored stream in a [`LeakageReport`].
    #[derive(Debug, Clone, PartialEq)]
    pub struct LeakageEntry {
        /// Stream label (dataset/policy/defense/rate).
        pub label: String,
        /// Encoder name as reported on the wire records.
        pub encoder: String,
        /// Wire frames observed.
        pub observations: u64,
        /// Distinct frame sizes; `1` means constant-size.
        pub distinct_sizes: usize,
        /// Smallest frame in bytes.
        pub min_wire_bytes: usize,
        /// Largest frame in bytes.
        pub max_wire_bytes: usize,
        /// Normalized mutual information between event labels and sizes.
        pub nmi: f64,
        /// Seeded permutation-test p-value for that NMI.
        pub p_value: f64,
        /// Inter-transmission gaps observed (always one fewer than the
        /// timed frames; 0 when the stream carried no send stamps).
        pub gap_observations: u64,
        /// Distinct gap values; `1` means a perfectly regular schedule.
        pub distinct_gaps: usize,
        /// Smallest gap in virtual microseconds.
        pub min_gap_us: u64,
        /// Largest gap in virtual microseconds.
        pub max_gap_us: u64,
        /// Normalized mutual information between event labels and gaps.
        pub timing_nmi: f64,
        /// Seeded permutation-test p-value for the timing NMI (1.0 when no
        /// gaps were observed).
        pub timing_p_value: f64,
    }

    /// A scored audit, serializable as `LEAKAGE.json`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct LeakageReport {
        /// Permutations used for each p-value.
        pub permutations: usize,
        /// Run seed the per-stream permutation seeds derive from.
        pub seed: u64,
        /// One entry per audited stream, sorted by `(label, encoder)`.
        pub entries: Vec<LeakageEntry>,
        /// Gate verdict, if a gate was evaluated.
        pub gate: Option<GateOutcome>,
    }

    fn push_f64(out: &mut String, v: f64) {
        out.push_str(&format!("{v:.6}"));
    }

    fn push_json_str(out: &mut String, value: &str) {
        out.push('"');
        for c in value.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    impl LeakageReport {
        /// Serializes the report as stable, human-diffable JSON (fixed field
        /// order, floats at fixed precision, one stream per line). Equal
        /// reports serialize to identical bytes — the determinism tests
        /// compare these strings across thread counts.
        pub fn to_json(&self) -> String {
            let mut out = String::with_capacity(256 + 256 * self.entries.len());
            out.push_str("{\n  \"version\": 2,\n  \"permutations\": ");
            out.push_str(&self.permutations.to_string());
            out.push_str(",\n  \"seed\": ");
            out.push_str(&self.seed.to_string());
            out.push_str(",\n  \"gate\": ");
            match &self.gate {
                None => out.push_str("null"),
                Some(gate) => {
                    out.push_str("{\"passed\": ");
                    out.push_str(if gate.passed { "true" } else { "false" });
                    out.push_str(", \"defended_checked\": ");
                    out.push_str(&gate.defended_checked.to_string());
                    out.push_str(", \"baseline_checked\": ");
                    out.push_str(&gate.baseline_checked.to_string());
                    out.push_str(", \"timing_defended_checked\": ");
                    out.push_str(&gate.timing_defended_checked.to_string());
                    out.push_str(", \"timing_baseline_checked\": ");
                    out.push_str(&gate.timing_baseline_checked.to_string());
                    out.push_str(", \"failures\": [");
                    for (i, failure) in gate.failures.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        push_json_str(&mut out, failure);
                    }
                    out.push_str("]}");
                }
            }
            out.push_str(",\n  \"streams\": [");
            for (i, e) in self.entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    {\"label\": ");
                push_json_str(&mut out, &e.label);
                out.push_str(", \"encoder\": ");
                push_json_str(&mut out, &e.encoder);
                out.push_str(", \"observations\": ");
                out.push_str(&e.observations.to_string());
                out.push_str(", \"distinct_sizes\": ");
                out.push_str(&e.distinct_sizes.to_string());
                out.push_str(", \"min_wire_bytes\": ");
                out.push_str(&e.min_wire_bytes.to_string());
                out.push_str(", \"max_wire_bytes\": ");
                out.push_str(&e.max_wire_bytes.to_string());
                out.push_str(", \"nmi\": ");
                push_f64(&mut out, e.nmi);
                out.push_str(", \"p_value\": ");
                push_f64(&mut out, e.p_value);
                out.push_str(", \"gap_observations\": ");
                out.push_str(&e.gap_observations.to_string());
                out.push_str(", \"distinct_gaps\": ");
                out.push_str(&e.distinct_gaps.to_string());
                out.push_str(", \"min_gap_us\": ");
                out.push_str(&e.min_gap_us.to_string());
                out.push_str(", \"max_gap_us\": ");
                out.push_str(&e.max_gap_us.to_string());
                out.push_str(", \"timing_nmi\": ");
                push_f64(&mut out, e.timing_nmi);
                out.push_str(", \"timing_p_value\": ");
                push_f64(&mut out, e.timing_p_value);
                out.push('}');
            }
            if !self.entries.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("]\n}\n");
            out
        }
    }

    impl fmt::Display for LeakageReport {
        /// Renders the scored streams as a fixed-width table, with the gate
        /// verdict appended when present.
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(
                f,
                "{:<28} {:<9} {:>7} {:>6} {:>5} {:>5} {:>7} {:>7} {:>6} {:>7} {:>7}",
                "label",
                "encoder",
                "frames",
                "sizes",
                "min",
                "max",
                "NMI",
                "p",
                "gaps",
                "tNMI",
                "tp"
            )?;
            writeln!(
                f,
                "{:-<28} {:-<9} {:-<7} {:-<6} {:-<5} {:-<5} {:-<7} {:-<7} {:-<6} {:-<7} {:-<7}",
                "", "", "", "", "", "", "", "", "", "", ""
            )?;
            for e in &self.entries {
                writeln!(
                    f,
                    "{:<28} {:<9} {:>7} {:>6} {:>5} {:>5} {:>7.4} {:>7.4} {:>6} {:>7.4} {:>7.4}",
                    e.label,
                    e.encoder,
                    e.observations,
                    e.distinct_sizes,
                    e.min_wire_bytes,
                    e.max_wire_bytes,
                    e.nmi,
                    e.p_value,
                    e.gap_observations,
                    e.timing_nmi,
                    e.timing_p_value,
                )?;
            }
            if let Some(gate) = &self.gate {
                writeln!(
                    f,
                    "gate: {} ({} defended, {} baseline streams checked; \
                     timing: {} defended, {} baseline)",
                    if gate.passed { "PASS" } else { "FAIL" },
                    gate.defended_checked,
                    gate.baseline_checked,
                    gate.timing_defended_checked,
                    gate.timing_baseline_checked,
                )?;
                for failure in &gate.failures {
                    writeln!(f, "  - {failure}")?;
                }
            }
            Ok(())
        }
    }

    /// The CI leakage-regression gate.
    ///
    /// Two-sided by construction: defended encoders must score at or below
    /// the NMI threshold, *and* at least one baseline encoder must score
    /// above it with a significant p-value on the same data. The second
    /// clause proves the gate can actually detect leakage — a run where
    /// nothing leaks, not even the undefended baseline, means the gate saw
    /// too little data (or the wrong streams) and would otherwise be
    /// vacuously green.
    ///
    /// The same thresholds apply to **two channels**: frame sizes and
    /// inter-transmission gaps. A defended *size* failure requires only
    /// `NMI > threshold` (constant-size encoders score exactly 0, so any
    /// excess is a real regression), while a defended *timing* failure
    /// additionally requires `p <= p_threshold`: gap histograms inherit
    /// benign, event-independent variance from retry backoff under fault
    /// injection, and small-sample NMI bias on such streams can brush the
    /// threshold; the permutation test is bias-robust and separates
    /// event-correlated schedules from noisy-but-independent ones.
    #[derive(Debug, Clone, PartialEq)]
    pub struct LeakageGate {
        /// NMI above this is a leak; at or below is tolerated noise.
        pub nmi_threshold: f64,
        /// Baseline leakage must be at least this significant to count as
        /// proof the detector works.
        pub p_threshold: f64,
        /// Streams with fewer observations than this are skipped: NMI
        /// estimates from a handful of frames are dominated by bias.
        pub min_observations: u64,
        /// Encoder names that must not leak (e.g. `AGE`, `Padded`).
        pub defended: Vec<String>,
        /// Encoder names expected to leak (e.g. `Std`).
        pub baseline: Vec<String>,
    }

    /// The verdict from evaluating a [`LeakageGate`] against a report.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct GateOutcome {
        /// Whether every check passed.
        pub passed: bool,
        /// Human-readable reasons for failure; empty when passed.
        pub failures: Vec<String>,
        /// Defended streams that met the observation floor.
        pub defended_checked: usize,
        /// Baseline streams that met the observation floor.
        pub baseline_checked: usize,
        /// Defended streams whose gap histogram met the observation floor.
        pub timing_defended_checked: usize,
        /// Baseline streams whose gap histogram met the observation floor.
        pub timing_baseline_checked: usize,
    }

    impl LeakageGate {
        /// Evaluates the gate against scored entries. Fails on any defended
        /// leak, and fails if it cannot prove itself non-vacuous (no
        /// defended streams, no baseline streams, or a baseline that does
        /// not demonstrably leak).
        pub fn evaluate(&self, entries: &[LeakageEntry]) -> GateOutcome {
            let mut outcome = GateOutcome::default();
            let mut baseline_leaks = false;
            let mut timing_baseline_leaks = false;
            for e in entries {
                let defended = self.defended.iter().any(|d| d == &e.encoder);
                let baseline = self.baseline.iter().any(|b| b == &e.encoder);
                if e.observations >= self.min_observations {
                    if defended {
                        outcome.defended_checked += 1;
                        if e.nmi > self.nmi_threshold {
                            outcome.failures.push(format!(
                                "leakage regression: {}/{} NMI {:.4} exceeds threshold {:.4} \
                                 (p={:.4}, {} frames, {} distinct sizes)",
                                e.label,
                                e.encoder,
                                e.nmi,
                                self.nmi_threshold,
                                e.p_value,
                                e.observations,
                                e.distinct_sizes,
                            ));
                        }
                    }
                    if baseline {
                        outcome.baseline_checked += 1;
                        if e.nmi > self.nmi_threshold && e.p_value <= self.p_threshold {
                            baseline_leaks = true;
                        }
                    }
                }
                if e.gap_observations >= self.min_observations {
                    if defended {
                        outcome.timing_defended_checked += 1;
                        if e.timing_nmi > self.nmi_threshold && e.timing_p_value <= self.p_threshold
                        {
                            outcome.failures.push(format!(
                                "timing regression: {}/{} gap NMI {:.4} exceeds threshold \
                                 {:.4} with p={:.4} <= {:.4} ({} gaps, {} distinct)",
                                e.label,
                                e.encoder,
                                e.timing_nmi,
                                self.nmi_threshold,
                                e.timing_p_value,
                                self.p_threshold,
                                e.gap_observations,
                                e.distinct_gaps,
                            ));
                        }
                    }
                    if baseline {
                        outcome.timing_baseline_checked += 1;
                        if e.timing_nmi > self.nmi_threshold && e.timing_p_value <= self.p_threshold
                        {
                            timing_baseline_leaks = true;
                        }
                    }
                }
            }
            if outcome.defended_checked == 0 {
                outcome.failures.push(format!(
                    "vacuous gate: no defended stream ({}) met the {}-observation floor",
                    self.defended.join(", "),
                    self.min_observations,
                ));
            }
            if outcome.baseline_checked == 0 {
                outcome.failures.push(format!(
                    "vacuous gate: no baseline stream ({}) met the {}-observation floor",
                    self.baseline.join(", "),
                    self.min_observations,
                ));
            } else if !baseline_leaks {
                outcome.failures.push(format!(
                    "detector not demonstrated: no baseline stream shows NMI > {:.4} \
                     with p <= {:.4}; the gate cannot prove it would catch a leak",
                    self.nmi_threshold, self.p_threshold,
                ));
            }
            if outcome.timing_defended_checked == 0 {
                outcome.failures.push(format!(
                    "vacuous timing gate: no defended stream ({}) produced {} \
                     inter-transmission gaps",
                    self.defended.join(", "),
                    self.min_observations,
                ));
            }
            if outcome.timing_baseline_checked == 0 {
                outcome.failures.push(format!(
                    "vacuous timing gate: no baseline stream ({}) produced {} \
                     inter-transmission gaps",
                    self.baseline.join(", "),
                    self.min_observations,
                ));
            } else if !timing_baseline_leaks {
                outcome.failures.push(format!(
                    "timing detector not demonstrated: no baseline stream shows gap \
                     NMI > {:.4} with p <= {:.4}; the gate cannot prove it would catch \
                     a timing leak",
                    self.nmi_threshold, self.p_threshold,
                ));
            }
            outcome.passed = outcome.failures.is_empty();
            outcome
        }
    }

    /// A [`Sink`] that folds wire records into a [`LeakageAudit`] and
    /// ignores batch records. Share one across sweep threads (count merges
    /// commute) or fan it out next to a `JsonlSink`.
    #[derive(Debug, Default)]
    pub struct LeakageSink {
        audit: Mutex<LeakageAudit>,
    }

    impl LeakageSink {
        /// An empty audit sink.
        pub fn new() -> Self {
            Self::default()
        }

        /// Takes the accumulated audit, leaving an empty one behind.
        pub fn take(&self) -> LeakageAudit {
            std::mem::take(&mut *self.audit.lock().unwrap())
        }

        /// A clone of the current audit state.
        pub fn snapshot(&self) -> LeakageAudit {
            self.audit.lock().unwrap().clone()
        }
    }

    impl Sink for LeakageSink {
        fn record_batch(&self, _record: &crate::record::BatchRecord) {}

        fn record_wire(&self, record: &WireRecord) {
            self.audit.lock().unwrap().observe_wire(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_from_counts_known_values() {
        assert_eq!(entropy_from_counts([]), 0.0);
        assert_eq!(entropy_from_counts([10]), 0.0);
        assert!((entropy_from_counts([5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy_from_counts([1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        assert!((entropy_from_counts([5, 0, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stream_nmi_matches_pairwise_nmi() {
        let labels: Vec<usize> = (0..240).map(|i| i % 3).collect();
        let sizes: Vec<usize> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if i % 2 == 0 { 100 + l } else { 200 })
            .collect();
        let mut stream = LeakageStream::new();
        for (&l, &m) in labels.iter().zip(&sizes) {
            stream.observe(l, m);
        }
        assert_eq!(stream.nmi(), nmi_pairs(&labels, &sizes));
        assert_eq!(stream.total(), 240);
        assert_eq!(stream.distinct_labels(), 3);
    }

    #[test]
    fn stream_perfect_dependence_is_one() {
        let mut stream = LeakageStream::new();
        for i in 0..100usize {
            stream.observe(i % 4, 100 + (i % 4) * 50);
        }
        assert!((stream.nmi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_streams_score_zero_not_nan() {
        // Empty.
        let empty = LeakageStream::new();
        assert_eq!(empty.nmi(), 0.0);
        assert_eq!(empty.permutation_p(10, 1), 1.0);
        // Constant sizes (the defended case).
        let mut constant = LeakageStream::new();
        for i in 0..50usize {
            constant.observe(i % 4, 128);
        }
        assert_eq!(constant.nmi(), 0.0);
        assert_eq!(constant.distinct_sizes(), 1);
        // Single label class.
        let mut one_label = LeakageStream::new();
        for i in 0..50usize {
            one_label.observe(7, 100 + i % 3);
        }
        assert_eq!(one_label.nmi(), 0.0);
        assert!(!one_label.nmi().is_nan());
        // Both constant.
        let mut flat = LeakageStream::new();
        flat.observe_n(1, 64, 50);
        assert_eq!(flat.nmi(), 0.0);
    }

    #[test]
    fn merge_is_order_independent_and_counts_add() {
        let mut a = LeakageStream::new();
        let mut b = LeakageStream::new();
        for i in 0..60usize {
            if i % 2 == 0 {
                a.observe(i % 3, 100 + i % 5);
            } else {
                b.observe(i % 3, 100 + i % 5);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total(), 60);
        // Merged NMI is bit-identical to observing everything in one stream.
        let mut whole = LeakageStream::new();
        for i in 0..60usize {
            whole.observe(i % 3, 100 + i % 5);
        }
        assert_eq!(ab, whole);
        assert_eq!(ab.nmi().to_bits(), whole.nmi().to_bits());
    }

    #[test]
    fn permutation_p_is_seeded_and_detects_leakage() {
        let mut leaky = LeakageStream::new();
        for i in 0..200usize {
            leaky.observe(i % 2, 100 + (i % 2) * 80);
        }
        let p = leaky.permutation_p(200, 42);
        assert!(p < 0.01, "p={p}");
        assert_eq!(p, leaky.permutation_p(200, 42));
        assert_eq!(leaky.permutation_p(0, 42), 1.0);
    }

    #[cfg(feature = "audit")]
    mod audit_tests {
        use super::super::*;
        use crate::record::WireRecord;
        use crate::sink::Sink;

        fn wire(label: &str, encoder: &str, event: usize, bytes: usize, seq: u64) -> WireRecord {
            WireRecord {
                label: label.to_string(),
                encoder: encoder.to_string(),
                seq,
                event,
                wire_bytes: bytes,
                epoch: String::new(),
                virtual_time: 0,
            }
        }

        fn leaky_and_defended() -> LeakageAudit {
            let mut audit = LeakageAudit::new();
            let (mut t_std, mut t_age) = (0u64, 0u64);
            for i in 0..120usize {
                // Undefended: size tracks the event exactly, and so does
                // the schedule (a bigger frame is on the air for longer).
                t_std += 500_000 + (i % 3) as u64 * 40_000;
                audit.observe_timed("epi/Linear/r0.50", "Std", i % 3, 60 + (i % 3) * 20, t_std);
                // Defended: constant size, metronome schedule.
                t_age += 500_000;
                audit.observe_timed("epi/Linear/r0.50", "AGE", i % 3, 118, t_age);
            }
            audit
        }

        fn gate() -> LeakageGate {
            LeakageGate {
                nmi_threshold: 0.05,
                p_threshold: 0.05,
                min_observations: 30,
                defended: vec!["AGE".into(), "Padded".into()],
                baseline: vec!["Std".into()],
            }
        }

        #[test]
        fn audit_merge_matches_single_writer() {
            let mut parts = [LeakageAudit::new(), LeakageAudit::new()];
            for i in 0..100usize {
                parts[i % 2].observe("s", "AGE", i % 4, 118);
                parts[i % 2].observe("s", "Std", i % 4, 50 + (i % 4) * 4);
            }
            let mut merged = LeakageAudit::new();
            merged.merge(&parts[0]);
            merged.merge(&parts[1]);
            let mut whole = LeakageAudit::new();
            for i in 0..100usize {
                whole.observe("s", "AGE", i % 4, 118);
                whole.observe("s", "Std", i % 4, 50 + (i % 4) * 4);
            }
            assert_eq!(merged, whole);
            let a = merged.report(50, 9).to_json();
            let b = whole.report(50, 9).to_json();
            assert_eq!(a, b);
        }

        #[test]
        fn report_scores_streams_and_serializes_stably() {
            let audit = leaky_and_defended();
            let report = audit.report(100, 2022);
            assert_eq!(report.entries.len(), 2);
            let age = &report.entries[0];
            let std = &report.entries[1];
            assert_eq!((age.encoder.as_str(), std.encoder.as_str()), ("AGE", "Std"));
            assert_eq!(age.nmi, 0.0);
            assert_eq!(age.distinct_sizes, 1);
            assert!(std.nmi > 0.9, "std nmi={}", std.nmi);
            assert!(std.p_value < 0.05, "std p={}", std.p_value);
            // Timing channel: 119 gaps each (one fewer than the frames);
            // the metronome scores 0, the stretchy schedule leaks.
            assert_eq!(age.gap_observations, 119);
            assert_eq!((age.distinct_gaps, age.timing_nmi), (1, 0.0));
            assert_eq!((age.min_gap_us, age.max_gap_us), (500_000, 500_000));
            assert!(std.timing_nmi > 0.9, "std tnmi={}", std.timing_nmi);
            assert!(std.timing_p_value < 0.05, "std tp={}", std.timing_p_value);
            let json = report.to_json();
            assert_eq!(json, audit.report(100, 2022).to_json());
            assert!(json.contains("\"version\": 2"));
            assert!(json.contains("\"encoder\": \"AGE\""));
            assert!(json.contains("\"gap_observations\": 119"));
            assert!(json.contains("\"timing_nmi\": "));
            assert!(json.contains("\"gate\": null"));
            assert!(json.ends_with("}\n"));
        }

        #[test]
        fn gate_passes_when_defended_holds_and_baseline_leaks() {
            let report = leaky_and_defended().report(100, 2022);
            let outcome = gate().evaluate(&report.entries);
            assert!(outcome.passed, "failures: {:?}", outcome.failures);
            assert_eq!(outcome.defended_checked, 1);
            assert_eq!(outcome.baseline_checked, 1);
            assert_eq!(outcome.timing_defended_checked, 1);
            assert_eq!(outcome.timing_baseline_checked, 1);
        }

        #[test]
        fn gate_catches_event_correlated_schedule_behind_constant_sizes() {
            let mut audit = leaky_and_defended();
            // Injected timing regression: constant 118-byte frames (the
            // size channel sees nothing), but the retry backoff stretches
            // with the event — exactly what an event-dependent policy
            // would do to the schedule.
            let mut t = 0u64;
            for i in 0..120usize {
                t += 500_000 + (i % 3) as u64 * 50_000;
                audit.observe_timed("epi/Deviation/r0.50", "Padded", i % 3, 118, t);
            }
            let report = audit.report(100, 2022);
            let regressed = report
                .entries
                .iter()
                .find(|e| e.encoder == "Padded")
                .unwrap();
            assert_eq!(regressed.nmi, 0.0); // invisible to the size channel
            let outcome = gate().evaluate(&report.entries);
            assert!(!outcome.passed);
            assert!(
                outcome
                    .failures
                    .iter()
                    .any(|f| f.contains("timing regression") && f.contains("Padded")),
                "failures: {:?}",
                outcome.failures
            );
            // And only the timing clause fired for the regressed stream.
            assert!(!outcome.failures.iter().any(|f| f.starts_with("leakage")));
        }

        #[test]
        fn clock_restarts_and_unstamped_records_produce_no_gaps() {
            let mut audit = LeakageAudit::new();
            // First run of the cell: 3 frames, 2 gaps.
            for t in [100u64, 200, 300] {
                audit.observe_timed("s", "AGE", 0, 118, t);
            }
            // The cell is re-run later; its clock restarts at 0. The
            // non-increasing stamp must open a new gap chain, not record
            // a bogus negative/huge gap.
            for t in [50u64, 150] {
                audit.observe_timed("s", "AGE", 1, 118, t);
            }
            let gaps = audit.gap_stream("s", "AGE").unwrap();
            assert_eq!(gaps.total(), 3); // 2 from run one + 1 from run two
            assert_eq!(gaps.distinct_sizes(), 1); // all gaps are 100 µs

            // Zero-stamped wire records feed the size channel only.
            let mut legacy = LeakageAudit::new();
            for i in 0..5u64 {
                legacy.observe_wire(&wire("s", "Std", 0, 60, i));
            }
            assert_eq!(legacy.stream("s", "Std").unwrap().total(), 5);
            assert!(legacy.gap_stream("s", "Std").is_none());
        }

        #[test]
        fn timed_wire_records_feed_the_gap_histogram() {
            let mut audit = LeakageAudit::new();
            for i in 0..4u64 {
                let mut record = wire("s", "Std", (i % 2) as usize, 60, i);
                record.virtual_time = (i + 1) * 1_000;
                audit.observe_wire(&record);
            }
            let gaps = audit.gap_stream("s", "Std").unwrap();
            assert_eq!(gaps.total(), 3);
            assert_eq!(
                (gaps.min_size(), gaps.max_size()),
                (Some(1_000), Some(1_000))
            );
        }

        #[test]
        fn audit_merge_matches_single_writer_for_gaps() {
            // Streams are cell-atomic: a merge combines audits that each
            // saw *whole* streams. That case must be exact.
            let mut a = LeakageAudit::new();
            let mut b = LeakageAudit::new();
            let mut whole = LeakageAudit::new();
            for i in 0..50u64 {
                let t = (i + 1) * 10_000 + (i % 2) * 500;
                a.observe_timed("cell/a", "Std", (i % 2) as usize, 60, t);
                whole.observe_timed("cell/a", "Std", (i % 2) as usize, 60, t);
            }
            for i in 0..50u64 {
                let t = (i + 1) * 10_000;
                b.observe_timed("cell/b", "AGE", (i % 2) as usize, 118, t);
                whole.observe_timed("cell/b", "AGE", (i % 2) as usize, 118, t);
            }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            assert_eq!(ab, ba);
            assert_eq!(ab, whole);
            assert_eq!(ab.report(50, 7).to_json(), whole.report(50, 7).to_json());
        }

        #[test]
        fn gate_fails_on_injected_padding_regression() {
            let mut audit = leaky_and_defended();
            // Injected regression: the "defended" encoder starts varying its
            // frame size with the event, as a broken padding stage would.
            for i in 0..120usize {
                audit.observe("epi/Deviation/r0.50", "Padded", i % 3, 100 + (i % 3) * 8);
            }
            let report = audit.report(100, 2022);
            let outcome = gate().evaluate(&report.entries);
            assert!(!outcome.passed);
            assert!(
                outcome.failures.iter().any(|f| f.contains("Padded")),
                "failures: {:?}",
                outcome.failures
            );
        }

        #[test]
        fn gate_fails_when_vacuous_or_detector_unproven() {
            // No streams at all: all four vacuity clauses fire (size and
            // timing, defended and baseline).
            let empty = LeakageAudit::new().report(10, 1);
            let outcome = gate().evaluate(&empty.entries);
            assert!(!outcome.passed);
            assert_eq!(outcome.failures.len(), 4);
            // Baseline present but (implausibly) constant-size: the gate
            // must refuse to certify a run where it never saw leakage.
            let mut audit = LeakageAudit::new();
            for i in 0..60usize {
                audit.observe("s", "AGE", i % 3, 118);
                audit.observe("s", "Std", i % 3, 118);
            }
            let outcome = gate().evaluate(&audit.report(50, 1).entries);
            assert!(!outcome.passed);
            assert!(outcome
                .failures
                .iter()
                .any(|f| f.contains("detector not demonstrated")));
        }

        #[test]
        fn leakage_sink_collects_wire_records() {
            let sink = LeakageSink::new();
            for i in 0..40u64 {
                sink.record_wire(&wire(
                    "s",
                    "Std",
                    (i % 2) as usize,
                    60 + (i % 2) as usize,
                    i,
                ));
            }
            // Batch records are ignored by this sink.
            sink.record_batch(&crate::record::BatchRecord::default());
            let audit = sink.take();
            let stream = audit.stream("s", "Std").unwrap();
            assert_eq!(stream.total(), 40);
            assert!(stream.nmi() > 0.9);
            assert!(sink.take().is_empty());
        }
    }
}
