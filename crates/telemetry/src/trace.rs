//! Chrome `trace_event` export for virtual-time spans.
//!
//! [`TraceSink`] buffers every [`SpanEvent`] the tracers emit and renders
//! them as a Chrome/Perfetto-compatible JSON array (`chrome://tracing` →
//! "Load"), with zero dependencies: "X" complete events carry `ts`/`dur`
//! in microseconds (our virtual clock's native unit), and each track's
//! `cat == "meta"` announcement becomes an "M" `thread_name` metadata
//! event so timelines are labeled with the sweep-cell name instead of a
//! hash.
//!
//! Export is deterministic by construction: events are sorted by a total
//! key before rendering, and both timestamps and track identities are
//! derived from deterministic inputs (the virtual clock and the label
//! hash), so a sweep produces a byte-identical trace at any thread count.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::record::BatchRecord;
use crate::sink::Sink;
use crate::span::SpanEvent;

/// Buffers spans in memory for trace export; install alongside the audit
/// sinks and call [`to_chrome_json`](TraceSink::to_chrome_json) at the end
/// of the run.
#[derive(Debug, Default)]
pub struct TraceSink {
    spans: Mutex<Vec<SpanEvent>>,
}

impl TraceSink {
    /// An empty trace buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of spans buffered so far (meta announcements included).
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Whether no spans have been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all buffered spans in arrival order.
    pub fn take(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut *self.spans.lock().unwrap())
    }

    /// Renders the buffered spans as a Chrome `trace_event` JSON array
    /// (trailing newline, no other whitespace games). Does not drain the
    /// buffer.
    ///
    /// Tracks are numbered 1..N by sorted label so `tid`s are small and
    /// stable; spans sort by `(tid, start, depth, name, dur)` — a total
    /// order over everything the simulator can emit — making the output
    /// independent of sweep scheduling.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.spans.lock().unwrap().clone();
        render_chrome_json(&spans)
    }
}

impl Sink for TraceSink {
    fn record_batch(&self, _record: &BatchRecord) {}

    fn record_span(&self, span: &SpanEvent) {
        self.spans.lock().unwrap().push(span.clone());
    }
}

/// Renders spans (from any collection of tracers) as Chrome trace JSON.
pub fn render_chrome_json(spans: &[SpanEvent]) -> String {
    // Track label table from meta announcements; unannounced tracks (no
    // meta event reached the sink) fall back to the hash, hex-printed.
    let mut labels: BTreeMap<u64, String> = BTreeMap::new();
    for s in spans {
        if s.cat == "meta" {
            labels.entry(s.track).or_insert_with(|| s.name.clone());
        }
    }
    let mut tracks: BTreeMap<u64, String> = BTreeMap::new();
    for s in spans {
        tracks.entry(s.track).or_insert_with(|| {
            labels
                .get(&s.track)
                .cloned()
                .unwrap_or_else(|| format!("track-{:016x}", s.track))
        });
    }
    // Dense, label-sorted thread ids: stable across runs, small in the UI.
    let mut ordered: Vec<(&String, u64)> = tracks.iter().map(|(t, l)| (l, *t)).collect();
    ordered.sort();
    let tid_of: BTreeMap<u64, usize> = ordered
        .iter()
        .enumerate()
        .map(|(i, (_, track))| (*track, i + 1))
        .collect();

    let mut timed: Vec<&SpanEvent> = spans.iter().filter(|s| s.cat != "meta").collect();
    timed.sort_by_key(|s| {
        (
            tid_of[&s.track],
            s.start_us,
            s.depth,
            s.name.clone(),
            s.dur_us,
        )
    });

    let mut out = String::with_capacity(64 * (ordered.len() + timed.len()) + 16);
    out.push_str("[\n");
    let mut first = true;
    for (label, track) in &ordered {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            tid_of[track],
            escape(label)
        ));
    }
    for s in &timed {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"{}\"}}",
            tid_of[&s.track],
            s.start_us,
            s.dur_us,
            escape(&s.name),
            escape(s.cat)
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Minimal JSON string escape (labels are workspace-generated, but a stray
/// quote must not corrupt the file).
fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &str,
        cat: &'static str,
        track: u64,
        start: u64,
        dur: u64,
        depth: u32,
    ) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            cat,
            track,
            start_us: start,
            dur_us: dur,
            depth,
        }
    }

    fn sample() -> Vec<SpanEvent> {
        vec![
            span("cell/B", "meta", 0xb, 0, 0, 0),
            span("cell/A", "meta", 0xa, 0, 0, 0),
            span("sequence", "sim", 0xb, 0, 300, 0),
            span("encode", "encode", 0xb, 0, 90, 1),
            span("sequence", "sim", 0xa, 0, 250, 0),
        ]
    }

    #[test]
    fn export_orders_tracks_by_label_and_spans_by_time() {
        let json = render_chrome_json(&sample());
        assert!(json.starts_with("[\n") && json.ends_with("\n]\n"), "{json}");
        // cell/A sorts before cell/B by label, so it gets tid 1 despite
        // arriving second.
        let a_meta = json.find("\"name\":\"cell/A\"").unwrap();
        let b_meta = json.find("\"name\":\"cell/B\"").unwrap();
        assert!(a_meta < b_meta);
        assert!(json.contains("\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"cell/A\"}"));
        // Outer span sorts before its nested child at the same start time.
        let seq = json
            .find("\"tid\":2,\"ts\":0,\"dur\":300,\"name\":\"sequence\"")
            .unwrap();
        let enc = json
            .find("\"tid\":2,\"ts\":0,\"dur\":90,\"name\":\"encode\"")
            .unwrap();
        assert!(seq < enc, "{json}");
    }

    #[test]
    fn export_is_independent_of_arrival_order() {
        let forward = render_chrome_json(&sample());
        let mut reversed = sample();
        reversed.reverse();
        assert_eq!(forward, render_chrome_json(&reversed));
    }

    #[test]
    fn unannounced_tracks_fall_back_to_hash_names() {
        let spans = vec![span("sequence", "sim", 0x1234, 10, 20, 0)];
        let json = render_chrome_json(&spans);
        assert!(json.contains("track-0000000000001234"), "{json}");
    }

    #[test]
    fn labels_are_escaped() {
        let spans = vec![
            span("cell \"q\"", "meta", 1, 0, 0, 0),
            span("s", "sim", 1, 0, 1, 0),
        ];
        let json = render_chrome_json(&spans);
        assert!(json.contains("cell \\\"q\\\""), "{json}");
    }

    #[test]
    fn sink_buffers_and_drains() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        sink.record_span(&span("s", "sim", 1, 0, 5, 0));
        sink.record_batch(&BatchRecord::default()); // ignored
        assert_eq!(sink.len(), 1);
        let json = sink.to_chrome_json();
        assert!(json.contains("\"ts\":0,\"dur\":5"));
        assert_eq!(sink.take().len(), 1);
        assert!(sink.is_empty());
    }
}
