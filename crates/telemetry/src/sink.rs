//! Pluggable destinations for [`BatchRecord`]s.
//!
//! Instrumented code calls [`emit`]; where the record goes is decided by
//! whichever [`Sink`] is installed. Two scopes exist:
//!
//! - **Thread-local** ([`install_thread`]): scoped to the current thread and
//!   restored on guard drop. This is what tests use — cargo runs tests on
//!   concurrent threads, and a thread-local sink keeps their records from
//!   bleeding into each other.
//! - **Global** ([`install_global`]): process-wide fallback, used by the
//!   `repro` binary whose experiment harness fans work out across scoped
//!   threads that all need to reach one `JsonlSink`.
//!
//! With no sink installed, [`emit`] drops the record; call sites can check
//! [`active`] first and skip building records entirely, so the uninstalled
//! cost is one thread-local read and one relaxed atomic load.

use std::cell::{Cell, RefCell};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::record::BatchRecord;
#[cfg(feature = "audit")]
use crate::record::WireRecord;
#[cfg(feature = "audit")]
use crate::span::SpanEvent;

/// A destination for per-batch telemetry records.
///
/// Implementations take `&self` (interior mutability) so one sink can be
/// shared across threads behind an `Arc`.
pub trait Sink: Send + Sync {
    /// Consumes one batch record.
    fn record_batch(&self, record: &BatchRecord);

    /// Consumes one sealed-frame observation (leakage audit). Default:
    /// ignored, so sinks that only care about batches need no change.
    #[cfg(feature = "audit")]
    fn record_wire(&self, _record: &WireRecord) {}

    /// Consumes one closed virtual-time span (trace export). Default:
    /// ignored — only trace sinks care.
    #[cfg(feature = "audit")]
    fn record_span(&self, _span: &SpanEvent) {}

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Discards everything. The behavior you get with no sink installed; exists
/// so code can hold a `Arc<dyn Sink>` unconditionally.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record_batch(&self, _record: &BatchRecord) {}
}

/// Buffers records in memory for test assertions.
#[derive(Debug, Default)]
pub struct RecordingSink {
    records: Mutex<Vec<BatchRecord>>,
    #[cfg(feature = "audit")]
    wires: Mutex<Vec<WireRecord>>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clone of every record seen so far.
    pub fn records(&self) -> Vec<BatchRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Number of records seen so far.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// Whether no records have been seen.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all records.
    pub fn take(&self) -> Vec<BatchRecord> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }

    /// A clone of every wire record seen so far.
    #[cfg(feature = "audit")]
    pub fn wire_records(&self) -> Vec<WireRecord> {
        self.wires.lock().unwrap().clone()
    }

    /// Drains and returns all wire records.
    #[cfg(feature = "audit")]
    pub fn take_wires(&self) -> Vec<WireRecord> {
        std::mem::take(&mut *self.wires.lock().unwrap())
    }
}

impl Sink for RecordingSink {
    fn record_batch(&self, record: &BatchRecord) {
        self.records.lock().unwrap().push(record.clone());
    }

    #[cfg(feature = "audit")]
    fn record_wire(&self, record: &WireRecord) {
        self.wires.lock().unwrap().push(record.clone());
    }
}

/// Writes one compact JSON object per record to a buffered writer.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
    include_timings: bool,
}

impl JsonlSink<File> {
    /// Creates (truncating) `path` and writes records to it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer; timings are included.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
            include_timings: true,
        }
    }

    /// Zeroes the `timings_ns` fields on write, so identical runs produce
    /// byte-identical files. This is the mode the determinism tests use:
    /// wall-clock stage timings are the one non-deterministic field in a
    /// record.
    pub fn without_timings(mut self) -> Self {
        self.include_timings = false;
        self
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record_batch(&self, record: &BatchRecord) {
        let line = if self.include_timings {
            record.to_json()
        } else {
            let mut stripped = record.clone();
            stripped.timings = Default::default();
            stripped.to_json()
        };
        let mut w = self.writer.lock().unwrap();
        // Telemetry must never take down the workload it observes.
        let _ = writeln!(w, "{line}");
    }

    #[cfg(feature = "audit")]
    fn record_wire(&self, record: &WireRecord) {
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{}", record.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

/// Broadcasts each record to several sinks (e.g. JSONL file + summary).
pub struct FanoutSink(pub Vec<Arc<dyn Sink>>);

impl Sink for FanoutSink {
    fn record_batch(&self, record: &BatchRecord) {
        for sink in &self.0 {
            sink.record_batch(record);
        }
    }

    #[cfg(feature = "audit")]
    fn record_wire(&self, record: &WireRecord) {
        for sink in &self.0 {
            sink.record_wire(record);
        }
    }

    #[cfg(feature = "audit")]
    fn record_span(&self, span: &SpanEvent) {
        for sink in &self.0 {
            sink.record_span(span);
        }
    }

    fn flush(&self) {
        for sink in &self.0 {
            sink.flush();
        }
    }
}

static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL_SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

thread_local! {
    static THREAD_SINK: RefCell<Vec<Arc<dyn Sink>>> = const { RefCell::new(Vec::new()) };
    static THREAD_TIMINGS: Cell<bool> = const { Cell::new(true) };
    static CONTEXT_LABEL: RefCell<String> = const { RefCell::new(String::new()) };
    static BATCH_COUNTER: Cell<u64> = const { Cell::new(0) };
    static CONTEXT_EVENT: Cell<Option<usize>> = const { Cell::new(None) };
    static CONTEXT_EPOCH: RefCell<String> = const { RefCell::new(String::new()) };
    static CONTEXT_VTIME: Cell<u64> = const { Cell::new(0) };
}

/// Sets the stream label stamped onto records emitted from this thread.
/// Callers (the simulator's runner, the `repro` binary) name the stream;
/// producers (the encoders) never need to know it.
///
/// *Changing* the label resets the per-stream batch counter, which keeps
/// record numbering a pure function of the call sequence (the determinism
/// tests rely on this). Setting the label already in effect is a no-op, so
/// long-lived callers like the simulator's `Sensor` can re-assert their
/// label on every message without restarting the count.
pub fn set_context_label(label: &str) {
    let changed = CONTEXT_LABEL.with(|l| {
        let mut l = l.borrow_mut();
        if l.as_str() == label {
            return false;
        }
        l.clear();
        l.push_str(label);
        true
    });
    if changed {
        BATCH_COUNTER.with(|c| c.set(0));
    }
}

/// Publishes the ground-truth event label active on this thread, stamped
/// onto subsequent batch records. The simulator's runner sets it before
/// each encode so the leakage audit can correlate wire sizes against the
/// event actually being sensed; `None` (the default) means "unknown".
pub fn set_context_event(event: Option<usize>) {
    CONTEXT_EVENT.with(|e| e.set(event));
}

/// The event label most recently published via [`set_context_event`].
pub fn context_event() -> Option<usize> {
    CONTEXT_EVENT.with(Cell::get)
}

/// Sets the key epoch stamped onto wire records emitted from this thread —
/// the scope within which sequence numbers must be unique (one epoch per
/// cell run; the nonce-uniqueness auditor keys on (epoch, seq)). Empty (the
/// default) means "unscoped": auditors fall back to the stream label.
pub fn set_context_epoch(epoch: &str) {
    CONTEXT_EPOCH.with(|e| {
        let mut e = e.borrow_mut();
        e.clear();
        e.push_str(epoch);
    });
}

/// The epoch most recently published via [`set_context_epoch`].
pub fn context_epoch() -> String {
    CONTEXT_EPOCH.with(|e| e.borrow().clone())
}

/// Publishes this thread's current virtual time (simulated microseconds),
/// stamped onto subsequent batch records. The simulator's runner advances
/// its `VirtualClock` and re-publishes before each encode; 0 (the default)
/// means "no clock" and is what bare encoder tests see.
pub fn set_context_vtime(vtime_us: u64) {
    CONTEXT_VTIME.with(|t| t.set(vtime_us));
}

/// The virtual time most recently published via [`set_context_vtime`].
pub fn context_vtime() -> u64 {
    CONTEXT_VTIME.with(Cell::get)
}

/// Fills a record's `label` and `event` from the thread context and assigns
/// it the next batch sequence number. Producers call this just before
/// [`emit`].
pub fn stamp(record: &mut BatchRecord) {
    record.label = CONTEXT_LABEL.with(|l| l.borrow().clone());
    record.event = CONTEXT_EVENT.with(Cell::get);
    record.virtual_time = CONTEXT_VTIME.with(Cell::get);
    record.batch = BATCH_COUNTER.with(|c| {
        let n = c.get();
        c.set(n + 1);
        n
    });
}

/// Installs the process-wide fallback sink; replaces any previous one.
/// Pass-through threads (no thread-local sink) emit here.
pub fn install_global(sink: Arc<dyn Sink>) {
    *GLOBAL_SINK.write().unwrap() = Some(sink);
    GLOBAL_ACTIVE.store(true, Ordering::Release);
}

/// Removes the process-wide sink, flushing it first.
pub fn clear_global() {
    let prev = GLOBAL_SINK.write().unwrap().take();
    GLOBAL_ACTIVE.store(false, Ordering::Release);
    if let Some(sink) = prev {
        sink.flush();
    }
}

/// Installs a sink for the current thread only, shadowing the global sink
/// (and any outer thread-local sink) until the returned guard drops.
#[must_use = "the sink is uninstalled when the guard drops"]
pub fn install_thread(sink: Arc<dyn Sink>) -> ThreadSinkGuard {
    THREAD_SINK.with(|stack| stack.borrow_mut().push(sink));
    ThreadSinkGuard { _priv: () }
}

/// Uninstalls the matching [`install_thread`] sink on drop.
pub struct ThreadSinkGuard {
    _priv: (),
}

impl Drop for ThreadSinkGuard {
    fn drop(&mut self) {
        if let Some(sink) = THREAD_SINK.with(|stack| stack.borrow_mut().pop()) {
            sink.flush();
        }
    }
}

/// Whether any sink would receive an emitted record. Instrumented code
/// checks this before assembling a [`BatchRecord`] so the uninstalled path
/// does no allocation or timing work.
#[inline]
pub fn active() -> bool {
    THREAD_SINK.with(|stack| !stack.borrow().is_empty()) || GLOBAL_ACTIVE.load(Ordering::Acquire)
}

/// Sends a record to the innermost thread-local sink, falling back to the
/// global sink; drops it if neither is installed.
pub fn emit(record: &BatchRecord) {
    let local = THREAD_SINK.with(|stack| stack.borrow().last().cloned());
    if let Some(sink) = local {
        sink.record_batch(record);
        return;
    }
    let global = GLOBAL_SINK.read().unwrap().clone();
    if let Some(sink) = global {
        sink.record_batch(record);
    }
}

/// Builds a [`WireRecord`] from the thread context (stream label) plus the
/// caller's frame facts, and routes it like [`emit`]. Transmit paths call
/// this once per sealed frame actually put on the air, so the audit sees
/// exactly what an eavesdropper would; `virtual_time` is the frame's first
/// radiation time on the simulator's deterministic clock (0 if unclocked).
#[cfg(feature = "audit")]
pub fn emit_wire(encoder: &str, seq: u64, event: usize, wire_bytes: usize, virtual_time: u64) {
    let record = WireRecord {
        label: CONTEXT_LABEL.with(|l| l.borrow().clone()),
        encoder: encoder.to_string(),
        seq,
        event,
        wire_bytes,
        epoch: CONTEXT_EPOCH.with(|e| e.borrow().clone()),
        virtual_time,
    };
    let local = THREAD_SINK.with(|stack| stack.borrow().last().cloned());
    if let Some(sink) = local {
        sink.record_wire(&record);
        return;
    }
    let global = GLOBAL_SINK.read().unwrap().clone();
    if let Some(sink) = global {
        sink.record_wire(&record);
    }
}

/// Routes one closed span like [`emit`]. Called by [`crate::span::Tracer`]
/// when tracing is enabled; most sinks ignore spans (trait default), so the
/// cost with only audit sinks installed is one virtual dispatch.
#[cfg(feature = "audit")]
pub fn emit_span(span: &SpanEvent) {
    let local = THREAD_SINK.with(|stack| stack.borrow().last().cloned());
    if let Some(sink) = local {
        sink.record_span(span);
        return;
    }
    let global = GLOBAL_SINK.read().unwrap().clone();
    if let Some(sink) = global {
        sink.record_span(span);
    }
}

/// Whether instrumented encoders should collect wall-clock stage timings on
/// this thread. Defaults to `true`; determinism tests turn it off so two
/// identical runs produce identical records.
#[inline]
pub fn timings_enabled() -> bool {
    THREAD_TIMINGS.with(Cell::get)
}

/// Sets [`timings_enabled`] for the current thread.
pub fn set_timings_enabled(enabled: bool) {
    THREAD_TIMINGS.with(|t| t.set(enabled));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or write the process-global sink state,
    /// since cargo runs tests on concurrent threads.
    static GLOBAL_STATE: Mutex<()> = Mutex::new(());

    fn rec(batch: u64) -> BatchRecord {
        BatchRecord {
            encoder: "age",
            batch,
            message_len: 52,
            ..Default::default()
        }
    }

    #[test]
    fn no_sink_is_inactive_and_emit_is_a_noop() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        assert!(!active());
        emit(&rec(0)); // must not panic
    }

    #[test]
    fn thread_sink_records_and_uninstalls_on_drop() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        let sink = Arc::new(RecordingSink::new());
        {
            let _guard = install_thread(sink.clone());
            assert!(active());
            emit(&rec(1));
            emit(&rec(2));
        }
        assert!(!active());
        emit(&rec(3)); // after the guard, this is dropped
        let records = sink.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].batch, 1);
        assert_eq!(records[1].batch, 2);
    }

    #[test]
    fn inner_thread_sink_shadows_outer() {
        let outer = Arc::new(RecordingSink::new());
        let inner = Arc::new(RecordingSink::new());
        let _outer_guard = install_thread(outer.clone());
        {
            let _inner_guard = install_thread(inner.clone());
            emit(&rec(1));
        }
        emit(&rec(2));
        assert_eq!(inner.len(), 1);
        assert_eq!(outer.len(), 1);
        assert_eq!(outer.records()[0].batch, 2);
    }

    #[test]
    fn global_sink_reaches_spawned_threads() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        let sink = Arc::new(RecordingSink::new());
        install_global(sink.clone());
        std::thread::scope(|s| {
            for i in 0..4u64 {
                s.spawn(move || emit(&rec(i)));
            }
        });
        clear_global();
        assert_eq!(sink.len(), 4);
        emit(&rec(99));
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let buf: Vec<u8> = Vec::new();
        let sink = JsonlSink::new(std::io::Cursor::new(buf));
        sink.record_batch(&rec(1));
        sink.record_batch(&rec(2));
        let writer = sink.writer.into_inner().unwrap();
        let bytes = writer.into_inner().unwrap().into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"batch\":1"));
        assert!(lines[1].contains("\"batch\":2"));
    }

    #[test]
    fn jsonl_without_timings_zeroes_them() {
        let mut record = rec(1);
        record.timings.pack_ns = 12345;
        let sink = JsonlSink::new(std::io::Cursor::new(Vec::new())).without_timings();
        sink.record_batch(&record);
        let writer = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(writer.into_inner().unwrap().into_inner()).unwrap();
        assert!(text.contains("\"pack\":0"), "{text}");
        assert!(!text.contains("12345"));
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(RecordingSink::new());
        let b = Arc::new(RecordingSink::new());
        let fan = FanoutSink(vec![a.clone(), b.clone()]);
        fan.record_batch(&rec(7));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn stamp_labels_and_numbers_records() {
        set_context_label("epilepsy/Linear");
        let mut a = rec(0);
        let mut b = rec(0);
        stamp(&mut a);
        stamp(&mut b);
        assert_eq!(a.label, "epilepsy/Linear");
        assert_eq!((a.batch, b.batch), (0, 1));
        set_context_label("other");
        let mut c = rec(0);
        stamp(&mut c);
        assert_eq!((c.label.as_str(), c.batch), ("other", 0));
    }

    #[test]
    fn stamp_fills_event_from_context() {
        set_context_event(Some(3));
        let mut a = rec(0);
        stamp(&mut a);
        assert_eq!(a.event, Some(3));
        set_context_event(None);
        let mut b = rec(0);
        stamp(&mut b);
        assert_eq!(b.event, None);
    }

    #[test]
    fn stamp_fills_virtual_time_from_context() {
        assert_eq!(context_vtime(), 0);
        set_context_vtime(42_000);
        let mut a = rec(0);
        stamp(&mut a);
        assert_eq!(a.virtual_time, 42_000);
        assert_eq!(context_vtime(), 42_000);
        set_context_vtime(0);
        let mut b = rec(0);
        stamp(&mut b);
        assert_eq!(b.virtual_time, 0);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn emit_wire_routes_to_thread_sink_with_context_label() {
        let sink = Arc::new(RecordingSink::new());
        {
            let _guard = install_thread(sink.clone());
            set_context_label("epi/Linear/Std/r0.50");
            emit_wire("Std", 7, 2, 86, 1_234_567);
        }
        set_context_label("");
        let wires = sink.wire_records();
        assert_eq!(wires.len(), 1);
        assert_eq!(wires[0].label, "epi/Linear/Std/r0.50");
        assert_eq!(wires[0].encoder, "Std");
        assert_eq!(
            (wires[0].seq, wires[0].event, wires[0].wire_bytes),
            (7, 2, 86)
        );
        assert_eq!(wires[0].virtual_time, 1_234_567);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn jsonl_sink_writes_wire_lines() {
        let sink = JsonlSink::new(std::io::Cursor::new(Vec::new()));
        sink.record_batch(&rec(1));
        sink.record_wire(&WireRecord {
            label: "s".into(),
            encoder: "AGE".into(),
            seq: 0,
            event: 1,
            wire_bytes: 118,
            epoch: "s#0".into(),
            virtual_time: 0,
        });
        let writer = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(writer.into_inner().unwrap().into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(!WireRecord::is_wire_line(lines[0]));
        let parsed = WireRecord::from_json(lines[1]).unwrap();
        assert_eq!(parsed.wire_bytes, 118);
    }

    #[test]
    fn timings_toggle_is_thread_local() {
        assert!(timings_enabled());
        set_timings_enabled(false);
        assert!(!timings_enabled());
        std::thread::scope(|s| {
            s.spawn(|| assert!(timings_enabled()));
        });
        set_timings_enabled(true);
    }
}
