//! Baseline encoders: the leaky standard encoding and BuFLO-style padding.

use age_fixed::{BitReader, BitWriter};

use crate::batch::{Batch, BatchConfig};
use crate::error::{DecodeError, EncodeError};
use crate::scratch::EncodeScratch;
use crate::Encoder;

/// Checks a batch against the standard layout's constraints. Split from the
/// writing so encoders can validate before committing their output buffer.
pub(crate) fn validate_standard(batch: &Batch, cfg: &BatchConfig) -> Result<(), EncodeError> {
    if batch.len() > cfg.max_len() {
        return Err(EncodeError::BatchTooLarge {
            len: batch.len(),
            max: cfg.max_len(),
        });
    }
    if let Some(&last) = batch.indices().last() {
        if last >= cfg.max_len() {
            return Err(EncodeError::IndexOutOfRange {
                index: last,
                max: cfg.max_len(),
            });
        }
    }
    if !batch.is_empty() && batch.features() != cfg.features() {
        return Err(EncodeError::FeatureMismatch {
            got: batch.features(),
            expected: cfg.features(),
        });
    }
    Ok(())
}

/// Writes the standard layout into `w`: a 16-bit count, then each collected
/// index with its full-width values. Infallible once validated. The whole
/// batch is quantized in one lane pass through `lane` before packing.
pub(crate) fn write_standard(
    batch: &Batch,
    cfg: &BatchConfig,
    w: &mut BitWriter,
    lane: &mut Vec<u64>,
) {
    let fmt = cfg.format();
    w.write_u16(batch.len() as u16);
    fmt.quantize_bits_slice(batch.values(), lane);
    let d = batch.features();
    for (t, &idx) in batch.indices().iter().enumerate() {
        w.write_bits(idx as u64, cfg.index_bits());
        w.write_fields(&lane[t * d..(t + 1) * d], fmt.width());
    }
}

/// Decodes a standard-layout prefix, ignoring any trailing bytes (the
/// padded defense leaves zero padding after the payload). Callers that
/// require an exact length check it against
/// [`BatchConfig::standard_message_bytes`] for the decoded `k`.
pub(crate) fn decode_standard(message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError> {
    let fmt = cfg.format();
    let mut r = BitReader::new(message);
    let k = usize::from(r.read_u16()?);
    if k > cfg.max_len() {
        return Err(DecodeError::Corrupt(
            "measurement count exceeds batch maximum",
        ));
    }
    let mut indices = Vec::with_capacity(k);
    let mut values = Vec::with_capacity(k * cfg.features());
    for _ in 0..k {
        // `index_bits` can address past `max_len` when it is not a power of
        // two, so a corrupted index must be range-checked explicitly.
        let index = r.read_bits(cfg.index_bits())? as usize;
        if index >= cfg.max_len() {
            return Err(DecodeError::Corrupt("decoded index out of range"));
        }
        indices.push(index);
        for _ in 0..cfg.features() {
            values.push(fmt.dequantize(fmt.from_bits(r.read_bits(fmt.width())?)));
        }
    }
    Batch::new(indices, values).map_err(|_| DecodeError::Corrupt("decoded indices not increasing"))
}

/// The standard adaptive-sampling message: a count, then each collected
/// index with its full-width values. Message length is proportional to the
/// number of collected measurements — this is the side-channel.
///
/// # Examples
///
/// ```
/// use age_core::{Batch, BatchConfig, Encoder, StandardEncoder};
/// use age_fixed::Format;
///
/// let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;
/// let enc = StandardEncoder;
/// let small = enc.encode(&Batch::new(vec![0], vec![0.0; 6])?, &cfg)?;
/// let large = enc.encode(&Batch::new((0..40).collect(), vec![0.0; 240])?, &cfg)?;
/// assert!(large.len() > small.len()); // leaks the collection rate
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardEncoder;

impl Encoder for StandardEncoder {
    fn name(&self) -> &'static str {
        "Standard"
    }

    fn is_fixed_length(&self) -> bool {
        false
    }

    fn encode_into(
        &self,
        batch: &Batch,
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        #[cfg(feature = "telemetry")]
        let mut stopwatch = age_telemetry::active().then(age_telemetry::Stopwatch::start);
        validate_standard(batch, cfg)?;
        out.clear();
        out.reserve(cfg.standard_message_bytes(batch.len()));
        let mut w = BitWriter::from_vec(std::mem::take(out));
        write_standard(batch, cfg, &mut w, &mut scratch.quant_bits);
        *out = w.into_bytes();
        #[cfg(feature = "telemetry")]
        emit_flat_record("Standard", batch, cfg, out.len(), None, &mut stopwatch);
        Ok(())
    }

    fn decode(&self, message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError> {
        let batch = decode_standard(message, cfg)?;
        // The standard layout has no padding: the message must be exactly
        // as long as its declared measurement count implies.
        let expected = cfg.standard_message_bytes(batch.len());
        if message.len() != expected {
            return Err(DecodeError::Length {
                len: message.len(),
                expected,
            });
        }
        Ok(batch)
    }

    fn decode_into(
        &self,
        message: &[u8],
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Batch,
    ) -> Result<(), DecodeError> {
        let _ = scratch;
        let fmt = cfg.format();
        let mut r = BitReader::new(message);
        let k = usize::from(r.read_u16()?);
        if k > cfg.max_len() {
            return Err(DecodeError::Corrupt(
                "measurement count exceeds batch maximum",
            ));
        }
        // Exact-length check up front: the declared count fixes the layout.
        let expected = cfg.standard_message_bytes(k);
        if message.len() != expected {
            return Err(DecodeError::Length {
                len: message.len(),
                expected,
            });
        }
        out.clear();
        let (indices, values) = out.parts_mut();
        indices.reserve(k);
        values.reserve(k * cfg.features());
        for _ in 0..k {
            let index = r.read_bits(cfg.index_bits())? as usize;
            if index >= cfg.max_len() {
                return Err(DecodeError::Corrupt("decoded index out of range"));
            }
            if indices.last().is_some_and(|&prev| prev >= index) {
                return Err(DecodeError::Corrupt("decoded indices not increasing"));
            }
            indices.push(index);
            for _ in 0..cfg.features() {
                values.push(fmt.dequantize(fmt.from_bits(r.read_bits(fmt.width())?)));
            }
        }
        Ok(())
    }
}

/// The padding defense (BuFLO-style, §5.1): standard encoding padded with
/// zero bytes up to a fixed length — by default the size of a full batch.
/// Lossless and leak-free, but the extra communication violates energy
/// budgets on low-power sensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddedEncoder {
    pad_to: usize,
}

impl PaddedEncoder {
    /// Pads to `pad_to` bytes — the paper's minimal padding uses the largest
    /// batch observed in the evaluation data.
    pub fn new(pad_to: usize) -> Self {
        PaddedEncoder { pad_to }
    }

    /// Pads to the worst case for the configuration: a full batch of
    /// `max_len` measurements.
    pub fn for_config(cfg: &BatchConfig) -> Self {
        PaddedEncoder {
            pad_to: cfg.standard_message_bytes(cfg.max_len()),
        }
    }

    /// The fixed message length in bytes.
    pub fn pad_to(&self) -> usize {
        self.pad_to
    }
}

impl Encoder for PaddedEncoder {
    fn name(&self) -> &'static str {
        "Padded"
    }

    fn is_fixed_length(&self) -> bool {
        true
    }

    fn encode_into(
        &self,
        batch: &Batch,
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        #[cfg(feature = "telemetry")]
        let mut stopwatch = age_telemetry::active().then(age_telemetry::Stopwatch::start);
        validate_standard(batch, cfg)?;
        let min = cfg.standard_message_bytes(batch.len());
        if min > self.pad_to {
            return Err(EncodeError::TargetTooSmall {
                target: self.pad_to,
                min,
            });
        }
        out.clear();
        out.reserve(self.pad_to);
        let mut w = BitWriter::from_vec(std::mem::take(out));
        write_standard(batch, cfg, &mut w, &mut scratch.quant_bits);
        debug_assert_eq!(w.byte_len(), min);
        w.pad_to_bytes(self.pad_to);
        *out = w.into_bytes();
        #[cfg(feature = "telemetry")]
        emit_flat_record(
            "Padded",
            batch,
            cfg,
            out.len(),
            Some(self.pad_to),
            &mut stopwatch,
        );
        Ok(())
    }

    fn decode(&self, message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError> {
        // Padded frames are fixed-length by construction; anything else has
        // been truncated or extended in transit.
        if message.len() != self.pad_to {
            return Err(DecodeError::Length {
                len: message.len(),
                expected: self.pad_to,
            });
        }
        decode_standard(message, cfg)
    }
}

/// Emits a telemetry record for a standard-layout message: a `k` header,
/// one index-directory entry per measurement, and full-width values.
#[cfg(feature = "telemetry")]
fn emit_flat_record(
    encoder: &'static str,
    batch: &Batch,
    cfg: &BatchConfig,
    message_len: usize,
    target_bytes: Option<usize>,
    stopwatch: &mut Option<age_telemetry::Stopwatch>,
) {
    let k = batch.len();
    let pack_ns = stopwatch.as_mut().map_or(0, |sw| sw.lap());
    crate::telemetry::count_encode(k, k, message_len, pack_ns);
    if stopwatch.is_some() {
        crate::telemetry::emit_record(age_telemetry::BatchRecord {
            encoder,
            input_len: k,
            kept_len: k,
            header_bits: crate::encoder::K_BITS,
            directory_bits: k * usize::from(cfg.index_bits()),
            data_bits: k * cfg.features() * usize::from(cfg.format().width()),
            message_len,
            target_bytes,
            timings: age_telemetry::StageTimings {
                pack_ns,
                ..Default::default()
            },
            ..Default::default()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use age_fixed::Format;

    fn cfg() -> BatchConfig {
        BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap()
    }

    fn batch(k: usize) -> Batch {
        let values: Vec<f64> = (0..k * 6).map(|i| (i as f64) * 0.25 - 2.0).collect();
        Batch::new((0..k).collect(), values).unwrap()
    }

    #[test]
    fn standard_length_tracks_collection_count() {
        let c = cfg();
        let enc = StandardEncoder;
        let sizes: Vec<usize> = [1usize, 10, 25, 50]
            .iter()
            .map(|&k| enc.encode(&batch(k), &c).unwrap().len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sizes[3], c.standard_message_bytes(50));
    }

    #[test]
    fn standard_roundtrip_is_lossless_for_representable_values() {
        let c = cfg();
        let enc = StandardEncoder;
        let fmt = c.format();
        let values: Vec<f64> = (0..60)
            .map(|i| fmt.round_trip(i as f64 * 0.03 - 1.0))
            .collect();
        let b = Batch::new((0..10).map(|i| i * 5).collect(), values.clone()).unwrap();
        let out = enc.decode(&enc.encode(&b, &c).unwrap(), &c).unwrap();
        assert_eq!(out.indices(), b.indices());
        assert_eq!(out.values(), values.as_slice());
    }

    #[test]
    fn padded_messages_have_constant_length() {
        let c = cfg();
        let enc = PaddedEncoder::for_config(&c);
        let a = enc.encode(&batch(1), &c).unwrap();
        let b = enc.encode(&batch(50), &c).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), c.standard_message_bytes(50));
    }

    #[test]
    fn padded_roundtrip_ignores_padding() {
        let c = cfg();
        let enc = PaddedEncoder::for_config(&c);
        let b = batch(7);
        let out = enc.decode(&enc.encode(&b, &c).unwrap(), &c).unwrap();
        assert_eq!(out.indices(), b.indices());
    }

    #[test]
    fn padded_rejects_undersized_pad() {
        let c = cfg();
        let enc = PaddedEncoder::new(10);
        assert!(matches!(
            enc.encode(&batch(20), &c),
            Err(EncodeError::TargetTooSmall { .. })
        ));
    }

    #[test]
    fn standard_pins_length_errors() {
        let c = cfg();
        let msg = StandardEncoder.encode(&batch(5), &c).unwrap();
        let expected = c.standard_message_bytes(5);
        assert_eq!(msg.len(), expected);
        let mut long = msg.clone();
        long.push(0);
        assert_eq!(
            StandardEncoder.decode(&long, &c),
            Err(DecodeError::Length {
                len: expected + 1,
                expected
            })
        );
        // Truncation starves the declared count of payload bits, so it is
        // reported as the bit-level Truncated error.
        assert!(matches!(
            StandardEncoder.decode(&msg[..msg.len() - 1], &c),
            Err(DecodeError::Truncated(_))
        ));
        // A forged count that understates the payload is caught by the
        // exact-length check instead of being silently accepted.
        let mut short_count = msg.clone();
        short_count[0] = 0;
        short_count[1] = 4;
        assert_eq!(
            StandardEncoder.decode(&short_count, &c),
            Err(DecodeError::Length {
                len: expected,
                expected: c.standard_message_bytes(4)
            })
        );
    }

    #[test]
    fn padded_pins_length_errors() {
        let c = cfg();
        let enc = PaddedEncoder::for_config(&c);
        let msg = enc.encode(&batch(5), &c).unwrap();
        assert_eq!(
            enc.decode(&msg[..msg.len() - 1], &c),
            Err(DecodeError::Length {
                len: msg.len() - 1,
                expected: enc.pad_to()
            })
        );
        let mut long = msg.clone();
        long.push(0);
        assert_eq!(
            enc.decode(&long, &c),
            Err(DecodeError::Length {
                len: msg.len() + 1,
                expected: enc.pad_to()
            })
        );
    }

    #[test]
    fn empty_batches_are_supported() {
        let c = cfg();
        let out = StandardEncoder
            .decode(&StandardEncoder.encode(&Batch::empty(), &c).unwrap(), &c)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn standard_decode_into_matches_decode() {
        let c = cfg();
        let mut scratch = EncodeScratch::default();
        let mut out = Batch::empty();
        for k in [0, 1, 7, 50] {
            let msg = StandardEncoder.encode(&batch(k), &c).unwrap();
            StandardEncoder
                .decode_into(&msg, &c, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(out, StandardEncoder.decode(&msg, &c).unwrap());
        }
        // Both reject a truncated and an extended message.
        let msg = StandardEncoder.encode(&batch(3), &c).unwrap();
        for bad in [&msg[..msg.len() - 1], &[msg.clone(), vec![0]].concat()[..]] {
            assert!(StandardEncoder
                .decode_into(bad, &c, &mut scratch, &mut out)
                .is_err());
            assert!(StandardEncoder.decode(bad, &c).is_err());
        }
    }
}
