//! Target message sizes (paper §4.1 and §4.5).
//!
//! The target size `M_B` for an energy budget `B` is the space needed to
//! encode `⌊ρ_B · T · d⌋` values at the original width `w0`, where `ρ_B` is
//! the average collection rate that meets the budget. AGE then *reduces*
//! this target to pay for its own compute overhead out of communication
//! savings: about 30 bytes, plus 20 more for every 500-byte multiple.

use age_crypto::CipherKind;

use crate::batch::BatchConfig;

/// The paper's target message size `M_B`: bytes to encode `⌊rate · T · d⌋`
/// values at the original width.
///
/// # Examples
///
/// ```
/// use age_core::{target, BatchConfig};
/// use age_fixed::Format;
///
/// let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;
/// // 70% of 300 values at 16 bits = 420 bytes.
/// assert_eq!(target::target_bytes(&cfg, 0.7), 420);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn target_bytes(cfg: &BatchConfig, rate: f64) -> usize {
    let rate = rate.clamp(0.0, 1.0);
    let values = (rate * cfg.max_len() as f64 * cfg.features() as f64).floor() as usize;
    (values * usize::from(cfg.format().width())).div_ceil(8)
}

/// Floor below which the reduction never shrinks a target (§7 of the paper
/// observes AGE is the superior defense only for batches of ≳100 bytes).
pub const MIN_REDUCED_TARGET: usize = 16;

/// AGE's reduced target (§4.5): `M_B − 30 − 20·⌊M_B / 500⌋`, with the
/// reduction capped at `M_B / 8` (the paper's §7 notes the flat 30-byte cut
/// is only sensible for batches of ≳100 bytes; smaller batches also carry
/// proportionally less encode-compute to repay, so an eighth of the target
/// still over-covers the 4×-charged compute in the energy model) and the
/// result clamped to [`MIN_REDUCED_TARGET`].
pub fn reduced_target_bytes(m_b: usize) -> usize {
    let reduction = (30 + 20 * (m_b / 500)).min((m_b / 8).max(4));
    m_b.saturating_sub(reduction)
        .max(MIN_REDUCED_TARGET.min(m_b))
}

/// The paper's reduction schedule taken literally, with no small-batch cap:
/// `M_B − 30 − 20·⌊M_B / 500⌋` (floored at [`MIN_REDUCED_TARGET`]). Used by
/// the `design` ablation experiment to quantify what the cap buys.
pub fn reduced_target_bytes_uncapped(m_b: usize) -> usize {
    let reduction = 30 + 20 * (m_b / 500);
    m_b.saturating_sub(reduction)
        .max(MIN_REDUCED_TARGET.min(m_b))
}

/// Plaintext budget for a cipher so the *on-air* message stays within
/// `message_budget` bytes.
///
/// - Stream ciphers: `message_budget − overhead` (the nonce).
/// - Block ciphers: the largest plaintext whose PKCS#7-padded body plus IV
///   fits; AGE rounds to the block structure rather than wasting padding.
pub fn plaintext_budget(
    message_budget: usize,
    kind: CipherKind,
    overhead: usize,
    block: usize,
) -> usize {
    match kind {
        CipherKind::Stream => message_budget.saturating_sub(overhead),
        CipherKind::Block => {
            let body = message_budget.saturating_sub(overhead);
            let blocks = body / block.max(1);
            // PKCS#7 always adds at least one byte, so a body of `blocks`
            // blocks carries at most `blocks·block − 1` plaintext bytes.
            (blocks * block).saturating_sub(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use age_fixed::Format;

    fn cfg(t: usize, d: usize, w: u8) -> BatchConfig {
        BatchConfig::new(t, d, Format::new(w, 0).unwrap()).unwrap()
    }

    #[test]
    fn target_scales_with_rate() {
        let c = cfg(100, 2, 16);
        assert_eq!(target_bytes(&c, 1.0), 400);
        assert_eq!(target_bytes(&c, 0.5), 200);
        assert_eq!(target_bytes(&c, 0.0), 0);
        // Rates are clamped.
        assert_eq!(target_bytes(&c, 2.0), 400);
    }

    #[test]
    fn target_floors_value_count() {
        let c = cfg(23, 10, 16);
        // 0.3 * 230 = 69 values at 16 bits = 138 bytes.
        assert_eq!(target_bytes(&c, 0.3), 138);
    }

    #[test]
    fn odd_widths_round_up_to_bytes() {
        let c = cfg(10, 1, 9);
        // 10 values * 9 bits = 90 bits = 12 bytes.
        assert_eq!(target_bytes(&c, 1.0), 12);
    }

    #[test]
    fn reduction_matches_paper_schedule() {
        assert_eq!(reduced_target_bytes(400), 400 - 30);
        assert_eq!(reduced_target_bytes(600), 600 - 50);
        assert_eq!(reduced_target_bytes(1200), 1200 - 70);
        // Small targets lose at most an eighth (min 4 bytes), never
        // everything.
        assert_eq!(reduced_target_bytes(220), 220 - 27);
        assert_eq!(reduced_target_bytes(72), 72 - 9);
        assert_eq!(reduced_target_bytes(40), 35);
        // Below the floor the target passes through unchanged.
        assert_eq!(reduced_target_bytes(10), 10);
    }

    #[test]
    fn plaintext_budget_stream_subtracts_nonce() {
        assert_eq!(plaintext_budget(200, CipherKind::Stream, 12, 0), 188);
        assert_eq!(plaintext_budget(5, CipherKind::Stream, 12, 0), 0);
    }

    #[test]
    fn plaintext_budget_block_respects_padding() {
        // 200 budget, 16 IV => 184 body => 11 blocks => 176 − 1 plaintext.
        assert_eq!(plaintext_budget(200, CipherKind::Block, 16, 16), 175);
        // Round trip: message_len(175) = 16 + (175/16+1)*16 = 192 <= 200,
        // while one more byte would overflow (message_len(176) = 208).
        let msg_len = |p: usize| 16 + (p / 16 + 1) * 16;
        assert!(msg_len(175) <= 200);
        assert!(msg_len(176) > 200);
    }
}
