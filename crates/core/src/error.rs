//! Error types for batch construction, encoding, and decoding.

use std::fmt;

use age_fixed::BitReaderError;

/// Error constructing a [`crate::Batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// Collected indices were not strictly increasing.
    UnsortedIndices,
    /// `values.len()` was not a multiple of `indices.len()`.
    LengthMismatch {
        /// Number of collected indices.
        indices: usize,
        /// Number of values supplied.
        values: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BatchError::UnsortedIndices => {
                f.write_str("collected indices must be strictly increasing")
            }
            BatchError::LengthMismatch { indices, values } => write!(
                f,
                "value count {values} is not a multiple of index count {indices}"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

/// Error returned by [`crate::Encoder::encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The batch holds more measurements than the configuration's `max_len`.
    BatchTooLarge {
        /// Measurements in the batch.
        len: usize,
        /// Configured maximum (`T`).
        max: usize,
    },
    /// A collected index is at or beyond `max_len`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Configured maximum (`T`).
        max: usize,
    },
    /// The batch's per-measurement feature count differs from the
    /// configuration.
    FeatureMismatch {
        /// Features per measurement in the batch.
        got: usize,
        /// Configured feature count (`d`).
        expected: usize,
    },
    /// The fixed-length target cannot hold even the encoder's own framing
    /// (headers, bitmask, group directory).
    TargetTooSmall {
        /// Configured target in bytes.
        target: usize,
        /// Minimum feasible target for this configuration.
        min: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodeError::BatchTooLarge { len, max } => {
                write!(
                    f,
                    "batch of {len} measurements exceeds the maximum of {max}"
                )
            }
            EncodeError::IndexOutOfRange { index, max } => {
                write!(f, "collected index {index} is outside 0..{max}")
            }
            EncodeError::FeatureMismatch { got, expected } => {
                write!(
                    f,
                    "batch has {got} features per measurement, expected {expected}"
                )
            }
            EncodeError::TargetTooSmall { target, min } => {
                write!(
                    f,
                    "target of {target} bytes is below the {min}-byte framing minimum"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error returned by [`crate::Encoder::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The message's byte length does not match the encoder's framing — a
    /// truncated or oversized message. Every encoder checks this up front
    /// so length tampering is reported structurally, not as a bit-level
    /// read failure deep inside the payload.
    Length {
        /// Observed message length in bytes.
        len: usize,
        /// Length the encoder's framing requires.
        expected: usize,
    },
    /// The message ended before all declared fields were read.
    Truncated(BitReaderError),
    /// A structural invariant failed (e.g. group counts disagree with the
    /// measurement count, or an invalid width field).
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Length { len, expected } => write!(
                f,
                "message of {len} bytes does not match the {expected}-byte framing"
            ),
            DecodeError::Truncated(e) => write!(f, "message truncated: {e}"),
            DecodeError::Corrupt(what) => write!(f, "message corrupt: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Truncated(e) => Some(e),
            DecodeError::Length { .. } | DecodeError::Corrupt(_) => None,
        }
    }
}

impl From<BitReaderError> for DecodeError {
    fn from(e: BitReaderError) -> Self {
        DecodeError::Truncated(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = BatchError::LengthMismatch {
            indices: 3,
            values: 10,
        };
        assert!(e.to_string().contains("10"));
        let e = EncodeError::TargetTooSmall { target: 4, min: 11 };
        assert!(e.to_string().contains("11-byte"));
        let e = DecodeError::Corrupt("group counts exceed k");
        assert!(e.to_string().starts_with("message corrupt"));
        let e = DecodeError::Length {
            len: 7,
            expected: 220,
        };
        assert!(e.to_string().contains("220-byte"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
