//! Integer-only AGE encoding — the MCU execution path.
//!
//! The paper's sensor implementation runs on a TI MSP430 with no floating
//! point unit: measurements arrive as raw fixed-point integers and every
//! step of AGE (§4.2–§4.4) is integer arithmetic, with the `1/8` and `×2`
//! scale factors chosen so they compile to shifts. This module mirrors
//! [`crate::AgeEncoder`] operating directly on raw values in the batch
//! format `(w0, n0)`, and is bit-for-bit equivalent to the floating-point
//! encoder for format-exact inputs (enforced by property tests).
//!
//! A `RawBatch` holds `raw = round(x · 2^frac0)` integers, exactly what the
//! sensor's ADC + fixed-point pipeline produces.

use age_fixed::{BitWriter, Format};

use crate::batch::{Batch, BatchConfig};
use crate::encoder::{AgeEncoder, EXP_BITS, GROUP_COUNT_BITS, K_BITS, MAX_GROUPS, WIDTH_BITS};
use crate::error::{BatchError, EncodeError};
use crate::group::{
    assign_widths, form_groups, merge_groups, optimize_partition, select_max_groups,
};

/// A batch of raw fixed-point measurements (the MCU-side twin of
/// [`Batch`]): strictly increasing indices plus `k · d` raw integers in the
/// configuration's `(w0, n0)` format.
///
/// # Examples
///
/// ```
/// use age_core::mcu::RawBatch;
///
/// // Two 1-feature measurements in a Q3.13 format: raw = x * 2^13.
/// let batch = RawBatch::new(vec![0, 4], vec![8192, -4096])?;
/// assert_eq!(batch.len(), 2);
/// # Ok::<(), age_core::BatchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawBatch {
    indices: Vec<usize>,
    raw: Vec<i64>,
}

impl RawBatch {
    /// Creates a raw batch.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] under the same conditions as [`Batch::new`].
    pub fn new(indices: Vec<usize>, raw: Vec<i64>) -> Result<Self, BatchError> {
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BatchError::UnsortedIndices);
        }
        if indices.is_empty() {
            if raw.is_empty() {
                return Ok(RawBatch { indices, raw });
            }
            return Err(BatchError::LengthMismatch {
                indices: 0,
                values: raw.len(),
            });
        }
        if !raw.len().is_multiple_of(indices.len()) || raw.is_empty() {
            return Err(BatchError::LengthMismatch {
                indices: indices.len(),
                values: raw.len(),
            });
        }
        Ok(RawBatch { indices, raw })
    }

    /// Quantizes a floating-point [`Batch`] into the raw format of `cfg` —
    /// what the ADC would have delivered directly.
    pub fn from_batch(batch: &Batch, cfg: &BatchConfig) -> Self {
        let fmt = cfg.format();
        RawBatch {
            indices: batch.indices().to_vec(),
            raw: batch.values().iter().map(|&x| fmt.quantize(x)).collect(),
        }
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The collected indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The raw values, row-major.
    pub fn raw(&self) -> &[i64] {
        &self.raw
    }

    fn features(&self) -> usize {
        if self.indices.is_empty() {
            0
        } else {
            self.raw.len() / self.indices.len()
        }
    }

    fn measurement(&self, t: usize) -> &[i64] {
        let d = self.features();
        &self.raw[t * d..(t + 1) * d]
    }

    fn retain(&self, keep: &[bool]) -> RawBatch {
        let d = self.features();
        let mut indices = Vec::new();
        let mut raw = Vec::new();
        for (t, &flag) in keep.iter().enumerate() {
            if flag {
                indices.push(self.indices[t]);
                raw.extend_from_slice(&self.raw[t * d..(t + 1) * d]);
            }
        }
        RawBatch { indices, raw }
    }
}

/// Integer distance scores (paper Eq. 1, scaled by 8 to stay integral):
/// `8·Dist(x_t) = 8·||x_t − x_{t+1}||₁(raw) + |α_t − α_{t+1}|·2^frac0`.
///
/// Multiplying the whole score by `8·2^frac0` preserves the ordering the
/// floating-point encoder uses: `Dist_f64 = ||Δx||₁ + gap/8` with
/// `||Δx||₁ = ||Δraw||₁ / 2^frac0`.
fn raw_distance_scores(batch: &RawBatch, frac_shift: i32) -> Vec<i128> {
    let k = batch.len();
    let mut scores = vec![i128::MAX; k];
    for (t, score) in scores.iter_mut().enumerate().take(k.saturating_sub(1)) {
        let a = batch.measurement(t);
        let b = batch.measurement(t + 1);
        let l1: i128 = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - y).unsigned_abs() as i128)
            .sum();
        let gap = (batch.indices()[t + 1] - batch.indices()[t]) as i128;
        // 8·l1 (raw units) + gap · 2^frac0: equal to 8·2^frac0·Dist.
        *score = (l1 << 3) + (gap << frac_shift.max(0)) / (1i128 << (-frac_shift).max(0));
    }
    scores
}

/// Integer pruning: drop the ℓ lowest-score measurements, ℓ from the §4.2
/// feasibility bound.
fn raw_prune(batch: &RawBatch, drop: usize, frac_shift: i32) -> RawBatch {
    let k = batch.len();
    if drop == 0 || k == 0 {
        return batch.clone();
    }
    if drop >= k {
        return RawBatch {
            indices: Vec::new(),
            raw: Vec::new(),
        };
    }
    let scores = raw_distance_scores(batch, frac_shift);
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&i| (scores[i], i));
    let mut keep = vec![true; k];
    for &victim in order.iter().take(drop) {
        keep[victim] = false;
    }
    batch.retain(&keep)
}

/// Required non-fractional bits for a raw value in a format with `frac0`
/// fractional bits: the smallest `n ≥ 1` with `-2^(n-1+frac0) ≤ raw <
/// 2^(n-1+frac0)` — pure shifts and compares, as the MCU computes it.
fn raw_required_bits(raw: i64, frac0: i16, max_n: u8) -> u8 {
    let max_n = max_n.max(1);
    for n in 1..=max_n {
        let shift = i32::from(n) - 1 + i32::from(frac0);
        let hi: i128 = if shift >= 0 {
            1i128 << shift.min(100)
        } else {
            // Fractional bound below 1: only raw == 0 fits when the bound
            // rounds to zero; compare in scaled space instead.
            let r = i128::from(raw) << ((-shift) as u32).min(100);
            if (-1..1).contains(&r) {
                return n;
            }
            continue;
        };
        if i128::from(raw) < hi && i128::from(raw) >= -hi {
            return n;
        }
    }
    max_n
}

/// Integer quantization of a raw `(w0, frac0)` value to `(w, n)`:
/// arithmetic shift with round-half-away and saturation — the sequence of
/// operations an MCU performs.
fn raw_requantize(raw: i64, frac0: i16, width: u8, n: u8) -> i64 {
    // Target fractional bits: f = width - n; shift = frac0 - f.
    let f = i32::from(width) - i32::from(n);
    let shift = i32::from(frac0) - f;
    let max_raw = (1i64 << (width - 1)) - 1;
    let min_raw = -(1i64 << (width - 1));
    let shifted: i64 = match shift.cmp(&0) {
        std::cmp::Ordering::Equal => raw,
        std::cmp::Ordering::Greater => {
            // Divide by 2^shift rounding half away from zero.
            let div = 1i64 << shift.min(62);
            let half = div >> 1;
            if raw >= 0 {
                (raw + half) >> shift.min(62)
            } else {
                -((-raw + half) >> shift.min(62))
            }
        }
        std::cmp::Ordering::Less => {
            let up = (-shift).min(62);
            match raw.checked_shl(up as u32) {
                Some(v) => v,
                None => {
                    return if raw > 0 { max_raw } else { min_raw };
                }
            }
        }
    };
    shifted.clamp(min_raw, max_raw)
}

/// Encodes a raw batch into a fixed-length AGE message using integer
/// arithmetic only. The output is byte-identical to
/// [`AgeEncoder::encode`](crate::Encoder::encode) applied to the
/// dequantized batch.
///
/// # Errors
///
/// Returns [`EncodeError`] under the same conditions as the floating-point
/// encoder.
pub fn encode_raw(
    encoder: &AgeEncoder,
    batch: &RawBatch,
    cfg: &BatchConfig,
) -> Result<Vec<u8>, EncodeError> {
    let d = cfg.features();
    if batch.len() > cfg.max_len() {
        return Err(EncodeError::BatchTooLarge {
            len: batch.len(),
            max: cfg.max_len(),
        });
    }
    if let Some(&last) = batch.indices().last() {
        if last >= cfg.max_len() {
            return Err(EncodeError::IndexOutOfRange {
                index: last,
                max: cfg.max_len(),
            });
        }
    }
    if !batch.is_empty() && batch.features() != d {
        return Err(EncodeError::FeatureMismatch {
            got: batch.features(),
            expected: d,
        });
    }
    let min = AgeEncoder::min_target_bytes(cfg);
    if encoder.target_bytes() < min {
        return Err(EncodeError::TargetTooSmall {
            target: encoder.target_bytes(),
            min,
        });
    }

    let fmt0 = cfg.format();
    let frac0 = fmt0.frac();
    let w0 = fmt0.width();
    let target_bits = encoder.target_bytes() * 8;
    let fixed_bits = K_BITS + cfg.max_len() + GROUP_COUNT_BITS;
    let entry_bits =
        usize::from(cfg.count_bits()) + usize::from(EXP_BITS) + usize::from(WIDTH_BITS);

    // §4.2 pruning (integer scores).
    let prune_budget = target_bits
        .saturating_sub(fixed_bits)
        .saturating_sub(entry_bits * encoder.min_groups());
    let per_measurement = usize::from(encoder.min_width()) * d;
    let max_keep = prune_budget
        .checked_div(per_measurement)
        .unwrap_or(batch.len());
    let drop = batch.len().saturating_sub(max_keep);
    let pruned;
    let batch = if drop > 0 {
        pruned = raw_prune(batch, drop, i32::from(frac0));
        &pruned
    } else {
        batch
    };
    let k = batch.len();

    // §4.3 grouping on integer exponents.
    let exponents: Vec<u8> = (0..k)
        .map(|t| {
            batch
                .measurement(t)
                .iter()
                .map(|&r| raw_required_bits(r, frac0, fmt0.integer_bits()))
                .max()
                .unwrap_or(1)
        })
        .collect();
    let groups = form_groups(&exponents);
    let max_groups = select_max_groups(
        target_bits.saturating_sub(fixed_bits),
        k * d * usize::from(w0),
        entry_bits,
        encoder.min_groups(),
    )
    .min(MAX_GROUPS);
    let groups = merge_groups(groups, max_groups);
    let groups = optimize_partition(
        groups,
        d,
        w0,
        target_bits.saturating_sub(fixed_bits),
        entry_bits,
        max_groups,
    );

    // §4.4 widths (identical integer routine to the float encoder).
    let data_budget = target_bits
        .saturating_sub(fixed_bits)
        .saturating_sub(entry_bits * groups.len());
    let widths = assign_widths(&groups, d, w0, data_budget);

    // Assembly.
    let mut w = BitWriter::with_capacity(encoder.target_bytes());
    w.write_u16(k as u16);
    let mut iter = batch.indices().iter().peekable();
    for t in 0..cfg.max_len() {
        let collected = matches!(iter.peek(), Some(&&idx) if idx == t);
        if collected {
            iter.next();
        }
        w.write_bits(u64::from(collected), 1);
    }
    w.write_u8(groups.len() as u8);
    for (g, &width) in groups.iter().zip(&widths) {
        w.write_bits(g.count as u64, cfg.count_bits());
        w.write_bits(u64::from(g.exponent), EXP_BITS);
        w.write_bits(u64::from(width), WIDTH_BITS);
    }
    let mut t = 0usize;
    for (g, &width) in groups.iter().zip(&widths) {
        if width == 0 {
            t += g.count;
            continue;
        }
        let fmt = Format::new(width, i16::from(width) - i16::from(g.exponent))
            .expect("group widths and exponents always form a valid format");
        for _ in 0..g.count {
            for &r in batch.measurement(t) {
                let q = raw_requantize(r, frac0, width, g.exponent);
                w.write_bits(fmt.to_bits(q), width);
            }
            t += 1;
        }
    }
    w.pad_to_bytes(encoder.target_bytes());
    Ok(w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;

    fn cfg() -> BatchConfig {
        BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap()
    }

    fn format_exact_batch(k: usize, d: usize, cfg: &BatchConfig) -> Batch {
        let fmt = cfg.format();
        let values: Vec<f64> = (0..k * d)
            .map(|i| fmt.round_trip(((i as f64) * 0.37).sin() * 2.0))
            .collect();
        Batch::new((0..k).collect(), values).unwrap()
    }

    #[test]
    fn raw_batch_construction_validates() {
        assert!(RawBatch::new(vec![1, 1], vec![0, 0]).is_err());
        assert!(RawBatch::new(vec![], vec![5]).is_err());
        assert!(RawBatch::new(vec![], vec![]).is_ok());
        assert!(RawBatch::new(vec![0, 1], vec![1, 2, 3]).is_err());
        let b = RawBatch::new(vec![0, 1], vec![1, 2, 3, 4]).unwrap();
        assert_eq!(b.features(), 2);
    }

    #[test]
    fn integer_encode_matches_float_encoder_exactly() {
        let c = cfg();
        let enc = AgeEncoder::new(220);
        for k in [0usize, 1, 7, 25, 50] {
            let fb = format_exact_batch(k, 6, &c);
            let rb = RawBatch::from_batch(&fb, &c);
            let float_msg = enc.encode(&fb, &c).unwrap();
            let int_msg = encode_raw(&enc, &rb, &c).unwrap();
            assert_eq!(float_msg, int_msg, "k={k}");
        }
    }

    #[test]
    fn integer_encode_matches_under_heavy_pruning() {
        let c = cfg();
        let enc = AgeEncoder::new(35);
        let fb = format_exact_batch(50, 6, &c);
        let rb = RawBatch::from_batch(&fb, &c);
        assert_eq!(
            enc.encode(&fb, &c).unwrap(),
            encode_raw(&enc, &rb, &c).unwrap()
        );
    }

    #[test]
    fn integer_encode_matches_for_integer_formats() {
        // Tiselac-like: frac0 = 0.
        let c = BatchConfig::new(23, 10, Format::new(16, 0).unwrap()).unwrap();
        let fmt = c.format();
        let values: Vec<f64> = (0..23 * 10)
            .map(|i| fmt.round_trip((i * 13 % 3000) as f64))
            .collect();
        let fb = Batch::new((0..23).collect(), values).unwrap();
        let rb = RawBatch::from_batch(&fb, &c);
        let enc = AgeEncoder::new(138);
        assert_eq!(
            enc.encode(&fb, &c).unwrap(),
            encode_raw(&enc, &rb, &c).unwrap()
        );
    }

    #[test]
    fn raw_required_bits_matches_float_version() {
        let frac0 = 13i16;
        for raw in [
            -40960i64, -8192, -4096, -1, 0, 1, 4095, 4096, 8191, 8192, 30000,
        ] {
            let x = raw as f64 / f64::powi(2.0, i32::from(frac0));
            let expected = age_fixed::required_integer_bits(x, 16);
            assert_eq!(
                raw_required_bits(raw, frac0, 16),
                expected,
                "raw={raw} x={x}"
            );
        }
    }

    #[test]
    fn raw_requantize_rounds_and_saturates() {
        // From Q3.13 to a 5-bit width with n=2 (f=3): shift right by 10.
        let q = raw_requantize(8192, 13, 5, 2); // 1.0 -> 8 (1.0 * 2^3)
        assert_eq!(q, 8);
        // Saturation: 3.9 in Q3.13 is 31949; 5-bit n=2 max raw is 15 (1.875).
        assert_eq!(raw_requantize(31949, 13, 5, 2), 15);
        assert_eq!(raw_requantize(-32768, 13, 5, 2), -16);
        // Round half away from zero: raw 512+... 0.0625*8192=512; to f=3:
        // shift 10, half=512 -> (512+512)>>10 = 1.
        assert_eq!(raw_requantize(512, 13, 5, 2), 1);
        assert_eq!(raw_requantize(-512, 13, 5, 2), -1);
        assert_eq!(raw_requantize(511, 13, 5, 2), 0);
    }

    #[test]
    fn decode_of_integer_message_roundtrips() {
        let c = cfg();
        let enc = AgeEncoder::new(300);
        let fb = format_exact_batch(20, 6, &c);
        let rb = RawBatch::from_batch(&fb, &c);
        let msg = encode_raw(&enc, &rb, &c).unwrap();
        let decoded = enc.decode(&msg, &c).unwrap();
        assert_eq!(decoded.indices(), fb.indices());
    }
}
