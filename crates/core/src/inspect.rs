//! Message-layout introspection: parse an AGE message and report where the
//! bits went.
//!
//! Useful for debugging encoder configurations, for documenting the wire
//! format, and for verifying the §4.4 claim that per-group widths waste
//! almost no space on padding.

use age_fixed::BitReader;

use crate::batch::BatchConfig;
use crate::error::DecodeError;

/// One group's directory entry as it appears on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLayout {
    /// Measurements in the group.
    pub count: usize,
    /// Non-fractional bits (exponent).
    pub exponent: u8,
    /// Assigned quantization width.
    pub width: u8,
    /// Data bits consumed by the group (`count · d · width`).
    pub data_bits: usize,
}

/// A fully parsed AGE message layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageLayout {
    /// Total message bytes.
    pub total_bytes: usize,
    /// Collected measurement count `k`.
    pub measurements: usize,
    /// Bits spent on the fixed header (count + bitmask + group count).
    pub header_bits: usize,
    /// Bits spent on the group directory.
    pub directory_bits: usize,
    /// Bits spent on quantized measurement data.
    pub data_bits: usize,
    /// Zero-padding bits at the tail.
    pub padding_bits: usize,
    /// Per-group layouts in wire order.
    pub groups: Vec<GroupLayout>,
}

impl MessageLayout {
    /// Fraction of the message carrying measurement data.
    pub fn data_fraction(&self) -> f64 {
        self.data_bits as f64 / (self.total_bytes * 8) as f64
    }

    /// Fraction of the message wasted on tail padding — the §4.4 round-robin
    /// width assignment keeps this small.
    pub fn padding_fraction(&self) -> f64 {
        self.padding_bits as f64 / (self.total_bytes * 8) as f64
    }

    /// Mean bits per value across groups (the "fractional width" AGE
    /// effectively achieves), or 0 for an empty message.
    pub fn effective_width(&self, features: usize) -> f64 {
        let values: usize = self.groups.iter().map(|g| g.count * features).sum();
        if values == 0 {
            0.0
        } else {
            self.data_bits as f64 / values as f64
        }
    }
}

impl std::fmt::Display for MessageLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} bytes: {} measurements in {} groups",
            self.total_bytes,
            self.measurements,
            self.groups.len()
        )?;
        writeln!(
            f,
            "  header {} b, directory {} b, data {} b, padding {} b",
            self.header_bits, self.directory_bits, self.data_bits, self.padding_bits
        )?;
        for (i, g) in self.groups.iter().enumerate() {
            writeln!(
                f,
                "  group {i}: {} × n={} w={} ({} data bits)",
                g.count, g.exponent, g.width, g.data_bits
            )?;
        }
        Ok(())
    }
}

/// Parses the layout of an AGE message produced by
/// [`crate::AgeEncoder::encode`](crate::Encoder::encode).
///
/// # Errors
///
/// Returns [`DecodeError`] on truncated or structurally invalid input.
///
/// # Examples
///
/// ```
/// use age_core::{inspect_message, AgeEncoder, Batch, BatchConfig, Encoder};
/// use age_fixed::Format;
///
/// let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;
/// let msg = AgeEncoder::new(220).encode(&Batch::new(vec![0, 9], vec![0.5; 12])?, &cfg)?;
/// let layout = inspect_message(&msg, &cfg)?;
/// assert_eq!(layout.measurements, 2);
/// assert_eq!(
///     layout.header_bits + layout.directory_bits + layout.data_bits + layout.padding_bits,
///     220 * 8
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn inspect_message(message: &[u8], cfg: &BatchConfig) -> Result<MessageLayout, DecodeError> {
    const EXP_BITS: u8 = 6;
    const WIDTH_BITS: u8 = 6;
    let d = cfg.features();
    let mut r = BitReader::new(message);
    let k = usize::from(r.read_u16()?);
    if k > cfg.max_len() {
        return Err(DecodeError::Corrupt(
            "measurement count exceeds batch maximum",
        ));
    }
    let mut popcount = 0usize;
    for _ in 0..cfg.max_len() {
        popcount += r.read_bits(1)? as usize;
    }
    if popcount != k {
        return Err(DecodeError::Corrupt(
            "bitmask population differs from header count",
        ));
    }
    let num_groups = usize::from(r.read_u8()?);
    let header_bits = 16 + cfg.max_len() + 8;

    let mut groups = Vec::with_capacity(num_groups);
    let mut total_count = 0usize;
    let mut data_bits = 0usize;
    for _ in 0..num_groups {
        let count = r.read_bits(cfg.count_bits())? as usize;
        let exponent = r.read_bits(EXP_BITS)? as u8;
        let width = r.read_bits(WIDTH_BITS)? as u8;
        let bits = count * d * usize::from(width);
        groups.push(GroupLayout {
            count,
            exponent,
            width,
            data_bits: bits,
        });
        total_count += count;
        data_bits += bits;
    }
    if total_count != k {
        return Err(DecodeError::Corrupt(
            "group counts disagree with measurement count",
        ));
    }
    let directory_bits = num_groups
        * (usize::from(cfg.count_bits()) + usize::from(EXP_BITS) + usize::from(WIDTH_BITS));
    let used = header_bits + directory_bits + data_bits;
    let total_bits = message.len() * 8;
    if used > total_bits {
        return Err(DecodeError::Corrupt(
            "declared content exceeds message length",
        ));
    }
    Ok(MessageLayout {
        total_bytes: message.len(),
        measurements: k,
        header_bits,
        directory_bits,
        data_bits,
        padding_bits: total_bits - used,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgeEncoder, Batch, Encoder};
    use age_fixed::Format;

    fn cfg() -> BatchConfig {
        BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap()
    }

    fn encode(k: usize, target: usize) -> (Vec<u8>, BatchConfig) {
        let c = cfg();
        let values: Vec<f64> = (0..k * 6)
            .map(|i| ((i as f64) * 0.31).sin() * 2.0)
            .collect();
        let batch = Batch::new((0..k).collect(), values).unwrap();
        (AgeEncoder::new(target).encode(&batch, &c).unwrap(), c)
    }

    #[test]
    fn sections_account_for_every_bit() {
        for k in [0usize, 1, 20, 50] {
            let (msg, c) = encode(k, 220);
            let layout = inspect_message(&msg, &c).unwrap();
            assert_eq!(layout.measurements, k);
            assert_eq!(
                layout.header_bits + layout.directory_bits + layout.data_bits + layout.padding_bits,
                220 * 8,
                "k={k}"
            );
        }
    }

    #[test]
    fn padding_is_small_under_compression() {
        // §4.4: per-group widths mimic fractional widths, wasting ~1%.
        let (msg, c) = encode(50, 220);
        let layout = inspect_message(&msg, &c).unwrap();
        assert!(
            layout.padding_fraction() < 0.03,
            "padding {}",
            layout.padding_fraction()
        );
        assert!(
            layout.data_fraction() > 0.5,
            "data {}",
            layout.data_fraction()
        );
    }

    #[test]
    fn effective_width_is_fractional() {
        let (msg, c) = encode(50, 220);
        let layout = inspect_message(&msg, &c).unwrap();
        let w = layout.effective_width(6);
        assert!(w > 1.0 && w < 16.0);
        // With 300 values in ~1400 usable data bits the width is non-integer.
        assert!(
            (w - w.round()).abs() > 1e-6,
            "width {w} is suspiciously integral"
        );
    }

    #[test]
    fn display_formats_sections() {
        let (msg, c) = encode(10, 220);
        let layout = inspect_message(&msg, &c).unwrap();
        let text = layout.to_string();
        assert!(text.contains("10 measurements"));
        assert!(text.contains("group 0"));
    }

    #[test]
    fn rejects_corrupt_messages() {
        let (mut msg, c) = encode(10, 220);
        msg[0] = 0xFF;
        msg[1] = 0xFF;
        assert!(inspect_message(&msg, &c).is_err());
        assert!(inspect_message(&msg[..3], &c).is_err());
    }
}
