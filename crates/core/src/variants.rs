//! Ablation variants of AGE (paper §5.6).
//!
//! Each variant produces fixed-length messages like AGE but omits part of
//! the design, isolating the contribution of the individual
//! transformations:
//!
//! - [`SingleEncoder`] — plain fixed-point quantization: one bit width, the
//!   static original exponent. Drops everything when even one bit per value
//!   does not fit.
//! - [`UnshiftedEncoder`] — six even-sized groups with round-robin widths,
//!   but the exponent stays fixed at `n0` (no dynamic ranges).
//! - [`PrunedEncoder`] — controls the size purely by dropping measurements;
//!   survivors keep the full original width.

use age_fixed::{BitReader, BitWriter, Format};

use crate::batch::{Batch, BatchConfig};
use crate::error::{DecodeError, EncodeError};
use crate::prune::{prune_count, prune_into};
use crate::scratch::EncodeScratch;
use crate::Encoder;

const K_BITS: usize = 16;
const WIDTH_BITS: u8 = 6;
/// Fixed group count used by [`UnshiftedEncoder`].
const UNSHIFTED_GROUPS: usize = 6;

fn validate(
    batch: &Batch,
    cfg: &BatchConfig,
    target: usize,
    min: usize,
) -> Result<(), EncodeError> {
    if batch.len() > cfg.max_len() {
        return Err(EncodeError::BatchTooLarge {
            len: batch.len(),
            max: cfg.max_len(),
        });
    }
    if let Some(&last) = batch.indices().last() {
        if last >= cfg.max_len() {
            return Err(EncodeError::IndexOutOfRange {
                index: last,
                max: cfg.max_len(),
            });
        }
    }
    if !batch.is_empty() && batch.features() != cfg.features() {
        return Err(EncodeError::FeatureMismatch {
            got: batch.features(),
            expected: cfg.features(),
        });
    }
    if target < min {
        return Err(EncodeError::TargetTooSmall { target, min });
    }
    Ok(())
}

fn write_header_and_mask(w: &mut BitWriter, batch: &Batch, cfg: &BatchConfig) {
    w.write_u16(batch.len() as u16);
    // Zero-runs between collected indices pack whole words per write.
    let mut next_clear = 0usize;
    for &idx in batch.indices() {
        w.write_run(0, 1, idx - next_clear);
        w.write_bits(1, 1);
        next_clear = idx + 1;
    }
    w.write_run(0, 1, cfg.max_len() - next_clear);
}

fn read_header_and_mask(
    r: &mut BitReader<'_>,
    cfg: &BatchConfig,
) -> Result<Vec<usize>, DecodeError> {
    let k = usize::from(r.read_u16()?);
    if k > cfg.max_len() {
        return Err(DecodeError::Corrupt(
            "measurement count exceeds batch maximum",
        ));
    }
    let mut indices = Vec::with_capacity(k);
    for t in 0..cfg.max_len() {
        if r.read_bits(1)? == 1 {
            indices.push(t);
        }
    }
    if indices.len() != k {
        return Err(DecodeError::Corrupt(
            "bitmask population differs from header count",
        ));
    }
    Ok(indices)
}

/// Even partition of `k` measurements into `parts` group counts (first
/// groups take the remainder). Zero-count groups are allowed.
fn even_groups(k: usize, parts: usize) -> Vec<usize> {
    let base = k / parts;
    let extra = k % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// [`even_groups`] for the fixed [`UNSHIFTED_GROUPS`] partition, on the
/// stack so the encode path stays allocation-free.
fn even_groups_fixed(k: usize) -> [usize; UNSHIFTED_GROUPS] {
    let base = k / UNSHIFTED_GROUPS;
    let extra = k % UNSHIFTED_GROUPS;
    std::array::from_fn(|i| base + usize::from(i < extra))
}

/// Fixed-point quantization alone: a single width, the original exponent
/// (§5.6's "Single" variant). Fixed-length but wasteful: widths round down
/// globally and large batches force dropping all measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleEncoder {
    target_bytes: usize,
}

impl SingleEncoder {
    /// Creates an encoder emitting exactly `target_bytes` per message.
    pub fn new(target_bytes: usize) -> Self {
        SingleEncoder { target_bytes }
    }

    /// The fixed message length in bytes.
    pub fn target_bytes(&self) -> usize {
        self.target_bytes
    }

    fn fixed_bits(cfg: &BatchConfig) -> usize {
        K_BITS + cfg.max_len() + usize::from(WIDTH_BITS)
    }
}

impl Encoder for SingleEncoder {
    fn name(&self) -> &'static str {
        "Single"
    }

    fn is_fixed_length(&self) -> bool {
        true
    }

    fn encode_into(
        &self,
        batch: &Batch,
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        let min = Self::fixed_bits(cfg).div_ceil(8);
        validate(batch, cfg, self.target_bytes, min)?;
        let d = cfg.features();
        let fmt0 = cfg.format();
        #[cfg(feature = "telemetry")]
        let input_len = batch.len();
        #[cfg(feature = "telemetry")]
        let mut stopwatch = age_telemetry::active().then(age_telemetry::Stopwatch::start);
        #[cfg(feature = "telemetry")]
        let mut stage_ns = age_telemetry::StageTimings::default();
        let data_budget = self.target_bytes * 8 - Self::fixed_bits(cfg);
        let total = batch.len() * d;
        let width = data_budget
            .checked_div(total)
            .unwrap_or(0)
            .min(usize::from(fmt0.width())) as u8;
        // When even one bit per value does not fit, quantization alone must
        // drop the entire batch.
        let empty = Batch::empty();
        let (batch, width) = if width == 0 {
            (&empty, 0)
        } else {
            (batch, width)
        };
        #[cfg(feature = "telemetry")]
        if let Some(sw) = stopwatch.as_mut() {
            stage_ns.quantize_ns = sw.lap();
        }

        out.clear();
        out.reserve(self.target_bytes);
        let mut w = BitWriter::from_vec(std::mem::take(out));
        write_header_and_mask(&mut w, batch, cfg);
        w.write_bits(u64::from(width), WIDTH_BITS);
        if width > 0 {
            let fmt = Format::from_integer_bits(width, fmt0.integer_bits().min(width))
                .expect("clamped integer bits always fit the width");
            fmt.quantize_bits_slice(batch.values(), &mut scratch.quant_bits);
            w.write_fields(&scratch.quant_bits, width);
        }
        w.pad_to_bytes(self.target_bytes);
        *out = w.into_bytes();
        #[cfg(feature = "telemetry")]
        {
            if let Some(sw) = stopwatch.as_mut() {
                stage_ns.pack_ns = sw.lap();
            }
            crate::telemetry::count_encode(input_len, batch.len(), out.len(), stage_ns.total_ns());
            if stopwatch.is_some() {
                crate::telemetry::emit_record(age_telemetry::BatchRecord {
                    encoder: "Single",
                    input_len,
                    kept_len: batch.len(),
                    groups_final: usize::from(width > 0),
                    groups: (width > 0)
                        .then(|| age_telemetry::GroupRecord {
                            count: batch.len(),
                            exponent: i32::from(fmt0.integer_bits().min(width)),
                            width,
                        })
                        .into_iter()
                        .collect(),
                    header_bits: K_BITS + cfg.max_len(),
                    directory_bits: usize::from(WIDTH_BITS),
                    data_bits: batch.len() * d * usize::from(width),
                    message_len: out.len(),
                    target_bytes: Some(self.target_bytes),
                    timings: stage_ns,
                    ..Default::default()
                });
            }
        }
        Ok(())
    }

    fn decode(&self, message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError> {
        if message.len() != self.target_bytes {
            return Err(DecodeError::Length {
                len: message.len(),
                expected: self.target_bytes,
            });
        }
        let mut r = BitReader::new(message);
        let indices = read_header_and_mask(&mut r, cfg)?;
        let width = r.read_bits(WIDTH_BITS)? as u8;
        if width > Format::MAX_WIDTH {
            return Err(DecodeError::Corrupt("width exceeds format maximum"));
        }
        if indices.is_empty() {
            return Ok(Batch::empty());
        }
        if width == 0 {
            return Err(DecodeError::Corrupt("zero width with a non-empty batch"));
        }
        let fmt = Format::from_integer_bits(width, cfg.format().integer_bits().min(width))
            .map_err(|_| DecodeError::Corrupt("invalid width field"))?;
        let mut values = Vec::with_capacity(indices.len() * cfg.features());
        for _ in 0..indices.len() * cfg.features() {
            values.push(fmt.dequantize(fmt.from_bits(r.read_bits(width)?)));
        }
        Batch::new(indices, values).map_err(|_| DecodeError::Corrupt("decoded batch invalid"))
    }
}

/// Six even-sized groups with round-robin widths but a *static* exponent
/// (§5.6's "Unshifted" variant): isolates the value of dynamic ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnshiftedEncoder {
    target_bytes: usize,
}

impl UnshiftedEncoder {
    /// Creates an encoder emitting exactly `target_bytes` per message.
    pub fn new(target_bytes: usize) -> Self {
        UnshiftedEncoder { target_bytes }
    }

    /// The fixed message length in bytes.
    pub fn target_bytes(&self) -> usize {
        self.target_bytes
    }

    fn fixed_bits(cfg: &BatchConfig) -> usize {
        K_BITS + cfg.max_len() + UNSHIFTED_GROUPS * usize::from(WIDTH_BITS)
    }
}

impl Encoder for UnshiftedEncoder {
    fn name(&self) -> &'static str {
        "Unshifted"
    }

    fn is_fixed_length(&self) -> bool {
        true
    }

    fn encode_into(
        &self,
        batch: &Batch,
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        let min = Self::fixed_bits(cfg).div_ceil(8);
        validate(batch, cfg, self.target_bytes, min)?;
        let d = cfg.features();
        let fmt0 = cfg.format();
        #[cfg(feature = "telemetry")]
        let input_len = batch.len();
        #[cfg(feature = "telemetry")]
        let mut stopwatch = age_telemetry::active().then(age_telemetry::Stopwatch::start);
        #[cfg(feature = "telemetry")]
        let mut stage_ns = age_telemetry::StageTimings::default();
        let data_budget = self.target_bytes * 8 - Self::fixed_bits(cfg);
        let total = batch.len() * d;
        // Like Single, drop everything when nothing fits.
        let empty = Batch::empty();
        let batch = if total > 0 && data_budget / total == 0 {
            &empty
        } else {
            batch
        };
        let counts = even_groups_fixed(batch.len());
        let total = batch.len() * d;

        let base = data_budget
            .checked_div(total)
            .unwrap_or(0)
            .min(usize::from(fmt0.width())) as u8;
        let mut widths = [base; UNSHIFTED_GROUPS];
        let mut used = total * usize::from(base);
        if total > 0 {
            loop {
                let mut changed = false;
                for (i, &c) in counts.iter().enumerate() {
                    let cost = c * d;
                    if cost > 0 && widths[i] < fmt0.width() && used + cost <= data_budget {
                        widths[i] += 1;
                        used += cost;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        #[cfg(feature = "telemetry")]
        if let Some(sw) = stopwatch.as_mut() {
            stage_ns.quantize_ns = sw.lap();
        }

        out.clear();
        out.reserve(self.target_bytes);
        let mut w = BitWriter::from_vec(std::mem::take(out));
        write_header_and_mask(&mut w, batch, cfg);
        for &width in &widths {
            w.write_bits(u64::from(width), WIDTH_BITS);
        }
        // Each even group's measurements are consecutive: quantize the
        // group's contiguous value slice as one lane, then pack it.
        let mut t = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            let width = widths[i];
            if width == 0 {
                t += c;
                continue;
            }
            let fmt = Format::from_integer_bits(width, fmt0.integer_bits().min(width))
                .expect("clamped integer bits always fit the width");
            fmt.quantize_bits_slice(&batch.values()[t * d..(t + c) * d], &mut scratch.quant_bits);
            w.write_fields(&scratch.quant_bits, width);
            t += c;
        }
        w.pad_to_bytes(self.target_bytes);
        *out = w.into_bytes();
        #[cfg(feature = "telemetry")]
        {
            if let Some(sw) = stopwatch.as_mut() {
                stage_ns.pack_ns = sw.lap();
            }
            crate::telemetry::count_encode(input_len, batch.len(), out.len(), stage_ns.total_ns());
            if stopwatch.is_some() {
                crate::telemetry::emit_record(age_telemetry::BatchRecord {
                    encoder: "Unshifted",
                    input_len,
                    kept_len: batch.len(),
                    groups_initial: UNSHIFTED_GROUPS,
                    groups_final: UNSHIFTED_GROUPS,
                    groups: counts
                        .iter()
                        .zip(&widths)
                        .map(|(&count, &width)| age_telemetry::GroupRecord {
                            count,
                            exponent: i32::from(fmt0.integer_bits().min(width)),
                            width,
                        })
                        .collect(),
                    header_bits: K_BITS + cfg.max_len(),
                    directory_bits: UNSHIFTED_GROUPS * usize::from(WIDTH_BITS),
                    data_bits: counts
                        .iter()
                        .zip(&widths)
                        .map(|(&c, &width)| c * d * usize::from(width))
                        .sum(),
                    message_len: out.len(),
                    target_bytes: Some(self.target_bytes),
                    timings: stage_ns,
                    ..Default::default()
                });
            }
        }
        Ok(())
    }

    fn decode(&self, message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError> {
        if message.len() != self.target_bytes {
            return Err(DecodeError::Length {
                len: message.len(),
                expected: self.target_bytes,
            });
        }
        let mut r = BitReader::new(message);
        let indices = read_header_and_mask(&mut r, cfg)?;
        let mut widths = Vec::with_capacity(UNSHIFTED_GROUPS);
        for _ in 0..UNSHIFTED_GROUPS {
            let width = r.read_bits(WIDTH_BITS)? as u8;
            if width > Format::MAX_WIDTH {
                return Err(DecodeError::Corrupt("width exceeds format maximum"));
            }
            widths.push(width);
        }
        let counts = even_groups(indices.len(), UNSHIFTED_GROUPS);
        let d = cfg.features();
        let mut values = Vec::with_capacity(indices.len() * d);
        for (i, &c) in counts.iter().enumerate() {
            let width = widths[i];
            if c > 0 && width == 0 {
                return Err(DecodeError::Corrupt("zero width for a populated group"));
            }
            if c == 0 {
                continue;
            }
            let fmt = Format::from_integer_bits(width, cfg.format().integer_bits().min(width))
                .map_err(|_| DecodeError::Corrupt("invalid width field"))?;
            for _ in 0..c * d {
                values.push(fmt.dequantize(fmt.from_bits(r.read_bits(width)?)));
            }
        }
        Batch::new(indices, values).map_err(|_| DecodeError::Corrupt("decoded batch invalid"))
    }
}

/// Pure pruning (§5.6's "Pruned" variant): the message size is controlled by
/// dropping measurements, and survivors keep the full original width. High
/// error whenever the policy over-samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrunedEncoder {
    target_bytes: usize,
}

impl PrunedEncoder {
    /// Creates an encoder emitting exactly `target_bytes` per message.
    pub fn new(target_bytes: usize) -> Self {
        PrunedEncoder { target_bytes }
    }

    /// The fixed message length in bytes.
    pub fn target_bytes(&self) -> usize {
        self.target_bytes
    }

    fn fixed_bits(cfg: &BatchConfig) -> usize {
        K_BITS + cfg.max_len()
    }
}

impl Encoder for PrunedEncoder {
    fn name(&self) -> &'static str {
        "Pruned"
    }

    fn is_fixed_length(&self) -> bool {
        true
    }

    fn encode_into(
        &self,
        batch: &Batch,
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        let min = Self::fixed_bits(cfg).div_ceil(8);
        validate(batch, cfg, self.target_bytes, min)?;
        let d = cfg.features();
        let fmt = cfg.format();
        #[cfg(feature = "telemetry")]
        let input_len = batch.len();
        #[cfg(feature = "telemetry")]
        let mut stopwatch = age_telemetry::active().then(age_telemetry::Stopwatch::start);
        #[cfg(feature = "telemetry")]
        let mut stage_ns = age_telemetry::StageTimings::default();
        let data_budget = self.target_bytes * 8 - Self::fixed_bits(cfg);
        let drop = prune_count(batch.len(), d, fmt.width(), data_budget);
        let EncodeScratch {
            pruned,
            prune,
            quant_bits,
            ..
        } = scratch;
        let batch = if drop > 0 {
            prune_into(batch, drop, prune, pruned);
            &*pruned
        } else {
            batch
        };
        #[cfg(feature = "telemetry")]
        if let Some(sw) = stopwatch.as_mut() {
            stage_ns.prune_ns = sw.lap();
        }

        out.clear();
        out.reserve(self.target_bytes);
        let mut w = BitWriter::from_vec(std::mem::take(out));
        write_header_and_mask(&mut w, batch, cfg);
        fmt.quantize_bits_slice(batch.values(), quant_bits);
        w.write_fields(quant_bits, fmt.width());
        w.pad_to_bytes(self.target_bytes);
        *out = w.into_bytes();
        #[cfg(feature = "telemetry")]
        {
            if let Some(sw) = stopwatch.as_mut() {
                stage_ns.pack_ns = sw.lap();
            }
            crate::telemetry::count_encode(input_len, batch.len(), out.len(), stage_ns.total_ns());
            if stopwatch.is_some() {
                crate::telemetry::emit_record(age_telemetry::BatchRecord {
                    encoder: "Pruned",
                    input_len,
                    kept_len: batch.len(),
                    groups_final: usize::from(!batch.is_empty()),
                    groups: (!batch.is_empty())
                        .then(|| age_telemetry::GroupRecord {
                            count: batch.len(),
                            exponent: i32::from(fmt.integer_bits()),
                            width: fmt.width(),
                        })
                        .into_iter()
                        .collect(),
                    header_bits: K_BITS + cfg.max_len(),
                    directory_bits: 0,
                    data_bits: batch.len() * d * usize::from(fmt.width()),
                    message_len: out.len(),
                    target_bytes: Some(self.target_bytes),
                    timings: stage_ns,
                    ..Default::default()
                });
            }
        }
        Ok(())
    }

    fn decode(&self, message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError> {
        if message.len() != self.target_bytes {
            return Err(DecodeError::Length {
                len: message.len(),
                expected: self.target_bytes,
            });
        }
        let fmt = cfg.format();
        let mut r = BitReader::new(message);
        let indices = read_header_and_mask(&mut r, cfg)?;
        let mut values = Vec::with_capacity(indices.len() * cfg.features());
        for _ in 0..indices.len() * cfg.features() {
            values.push(fmt.dequantize(fmt.from_bits(r.read_bits(fmt.width())?)));
        }
        Batch::new(indices, values).map_err(|_| DecodeError::Corrupt("decoded batch invalid"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BatchConfig {
        BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap()
    }

    fn batch(k: usize) -> Batch {
        let values: Vec<f64> = (0..k * 6).map(|i| ((i % 17) as f64) * 0.1 - 0.8).collect();
        Batch::new((0..k).collect(), values).unwrap()
    }

    #[test]
    fn all_variants_are_fixed_length() {
        let c = cfg();
        let encoders: Vec<Box<dyn Encoder>> = vec![
            Box::new(SingleEncoder::new(150)),
            Box::new(UnshiftedEncoder::new(150)),
            Box::new(PrunedEncoder::new(150)),
        ];
        for enc in &encoders {
            assert!(enc.is_fixed_length());
            for k in [0usize, 1, 20, 50] {
                let msg = enc.encode(&batch(k), &c).unwrap();
                assert_eq!(msg.len(), 150, "{} k={k}", enc.name());
            }
        }
    }

    #[test]
    fn variants_roundtrip() {
        let c = cfg();
        let b = batch(20);
        for enc in [
            Box::new(SingleEncoder::new(200)) as Box<dyn Encoder>,
            Box::new(UnshiftedEncoder::new(200)),
            Box::new(PrunedEncoder::new(400)),
        ] {
            let out = enc.decode(&enc.encode(&b, &c).unwrap(), &c).unwrap();
            assert_eq!(out.indices(), b.indices(), "{}", enc.name());
            for (x, y) in b.values().iter().zip(out.values()) {
                assert!((x - y).abs() < 0.2, "{}: {x} vs {y}", enc.name());
            }
        }
    }

    #[test]
    fn single_drops_all_when_nothing_fits() {
        // 50×6 values and a 35-byte target: < 1 bit per value.
        let c = cfg();
        let enc = SingleEncoder::new(35);
        let out = enc
            .decode(&enc.encode(&batch(50), &c).unwrap(), &c)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn pruned_keeps_full_precision_for_survivors() {
        let c = cfg();
        let fmt = c.format();
        let enc = PrunedEncoder::new(100);
        let values: Vec<f64> = (0..50 * 6)
            .map(|i| fmt.round_trip((i as f64 * 0.37).sin()))
            .collect();
        let b = Batch::new((0..50).collect(), values).unwrap();
        let out = enc.decode(&enc.encode(&b, &c).unwrap(), &c).unwrap();
        assert!(!out.is_empty());
        assert!(out.len() < 50);
        // Survivors are bit-exact.
        for (t, &idx) in out.indices().iter().enumerate() {
            let orig_pos = b.indices().iter().position(|&i| i == idx).unwrap();
            assert_eq!(out.measurement(t), b.measurement(orig_pos));
        }
    }

    #[test]
    fn unshifted_partitions_evenly() {
        assert_eq!(even_groups(20, 6), vec![4, 4, 3, 3, 3, 3]);
        assert_eq!(even_groups(5, 6), vec![1, 1, 1, 1, 1, 0]);
        assert_eq!(even_groups(0, 6), vec![0; 6]);
        assert_eq!(even_groups(6, 6), vec![1; 6]);
    }

    #[test]
    fn unshifted_loses_precision_on_small_values_vs_age() {
        // Values all << 1 with a tight budget: the static exponent wastes
        // integer bits the data never uses.
        use crate::AgeEncoder;
        let c = cfg();
        let values: Vec<f64> = (0..40 * 6).map(|i| 0.002 * ((i % 9) as f64)).collect();
        let b = Batch::new((0..40).collect(), values.clone()).unwrap();
        let mae = |dec: &Batch| -> f64 {
            dec.values()
                .iter()
                .zip(&values)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / values.len() as f64
        };
        let uns = UnshiftedEncoder::new(100);
        let age = AgeEncoder::new(100);
        let mae_uns = mae(&uns.decode(&uns.encode(&b, &c).unwrap(), &c).unwrap());
        let age_out = age.decode(&age.encode(&b, &c).unwrap(), &c).unwrap();
        // AGE may prune; compare against its own decoded subset.
        let mut age_err = 0.0;
        let mut n = 0usize;
        for (t, &idx) in age_out.indices().iter().enumerate() {
            let pos = b.indices().iter().position(|&i| i == idx).unwrap();
            for (x, y) in age_out.measurement(t).iter().zip(b.measurement(pos)) {
                age_err += (x - y).abs();
                n += 1;
            }
        }
        let mae_age = age_err / n as f64;
        assert!(
            mae_age < mae_uns,
            "AGE {mae_age} should beat Unshifted {mae_uns}"
        );
    }

    #[test]
    fn variants_pin_length_errors() {
        let c = cfg();
        let b = batch(5);
        for enc in [
            Box::new(SingleEncoder::new(150)) as Box<dyn Encoder>,
            Box::new(UnshiftedEncoder::new(150)),
            Box::new(PrunedEncoder::new(150)),
        ] {
            let msg = enc.encode(&b, &c).unwrap();
            // Truncated message.
            assert_eq!(
                enc.decode(&msg[..msg.len() - 1], &c),
                Err(DecodeError::Length {
                    len: 149,
                    expected: 150
                }),
                "{}",
                enc.name()
            );
            // Oversized message.
            let mut long = msg.clone();
            long.push(0);
            assert_eq!(
                enc.decode(&long, &c),
                Err(DecodeError::Length {
                    len: 151,
                    expected: 150
                }),
                "{}",
                enc.name()
            );
        }
    }

    #[test]
    fn variants_reject_undersized_targets() {
        let c = cfg();
        assert!(SingleEncoder::new(3).encode(&batch(1), &c).is_err());
        assert!(UnshiftedEncoder::new(3).encode(&batch(1), &c).is_err());
        assert!(PrunedEncoder::new(3).encode(&batch(1), &c).is_err());
    }
}
