//! Exponent-aware group formation (paper §4.3).
//!
//! Fixed-point quantization with a static exponent wastes precision when the
//! data range varies. AGE computes the required exponent (non-fractional
//! width, including the sign bit) for each measurement, run-length encodes
//! the exponent sequence into groups of adjacent measurements, and — because
//! RLE has no worst-case guarantee — greedily merges adjacent groups until
//! at most `G` remain, scoring a candidate merge of `g1, g2` as
//!
//! ```text
//! Score(g1, g2) = Count(g1) + Count(g2) + 2·|n1 − n2|
//! ```
//!
//! Merged groups adopt `max(n1, n2)` to avoid saturating large values. The
//! factor of two is implementable with a bit shift on an MCU. Scores are
//! computed once, and merges applied in ascending initial-score order (the
//! paper notes rescoring after each merge is not worth the MCU overhead).

use age_fixed::required_integer_bits;

use crate::batch::Batch;

/// A run of adjacent measurements sharing an exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group {
    /// Number of measurements in the group.
    pub count: usize,
    /// Non-fractional bits (including sign) for every value in the group.
    pub exponent: u8,
}

/// Per-measurement exponent: the widest exponent needed by any of the
/// measurement's features, clamped to `max_n`.
pub fn measurement_exponents(batch: &Batch, max_n: u8) -> Vec<u8> {
    let mut out = Vec::new();
    measurement_exponents_into(batch, max_n, &mut out);
    out
}

/// Allocation-reusing form of [`measurement_exponents`]: clears `out` and
/// fills it with one exponent per measurement.
pub fn measurement_exponents_into(batch: &Batch, max_n: u8, out: &mut Vec<u8>) {
    out.clear();
    if batch.is_empty() {
        return;
    }
    // One flat pass over the row-major values; `chunks_exact` lets the
    // per-feature max reduce without a bounds check per measurement.
    out.extend(batch.values().chunks_exact(batch.features()).map(|row| {
        row.iter()
            .map(|&x| required_integer_bits(x, max_n))
            .max()
            .unwrap_or(1)
    }));
}

/// Run-length encodes an exponent sequence into maximal groups.
pub fn form_groups(exponents: &[u8]) -> Vec<Group> {
    let mut groups = Vec::new();
    form_groups_into(exponents, &mut groups);
    groups
}

/// Allocation-reusing form of [`form_groups`]: clears `out` and fills it
/// with the maximal runs.
pub fn form_groups_into(exponents: &[u8], out: &mut Vec<Group>) {
    out.clear();
    for &n in exponents {
        match out.last_mut() {
            Some(g) if g.exponent == n => g.count += 1,
            _ => out.push(Group {
                count: 1,
                exponent: n,
            }),
        }
    }
}

/// Reusable buffers for [`merge_groups_in_place`], so steady-state merging
/// performs no heap allocations once the buffers have grown to the group
/// count.
#[derive(Debug, Default)]
pub struct MergeScratch {
    order: Vec<usize>,
    scores: Vec<i64>,
    parent: Vec<usize>,
}

/// Greedily merges adjacent groups (ascending initial score) until at most
/// `max_groups` remain. Skipped entirely when already within the cap.
pub fn merge_groups(groups: Vec<Group>, max_groups: usize) -> Vec<Group> {
    let mut groups = groups;
    merge_groups_in_place(&mut groups, max_groups, &mut MergeScratch::default());
    groups
}

/// Allocation-reusing form of [`merge_groups`]: merges within `groups`
/// itself (each union-find set is a contiguous span, so the collapse can
/// compact forward in place) and keeps all working state in `scratch`.
pub fn merge_groups_in_place(
    groups: &mut Vec<Group>,
    max_groups: usize,
    scratch: &mut MergeScratch,
) {
    let max_groups = max_groups.max(1);
    if groups.len() <= max_groups {
        return;
    }
    // Initial scores of each adjacent pair (i, i+1), fixed up-front.
    let initial_score = |a: &Group, b: &Group| -> i64 {
        a.count as i64 + b.count as i64 + 2 * (i64::from(a.exponent) - i64::from(b.exponent)).abs()
    };
    scratch.scores.clear();
    scratch
        .scores
        .extend((0..groups.len() - 1).map(|i| initial_score(&groups[i], &groups[i + 1])));
    scratch.order.clear();
    scratch.order.extend(0..groups.len() - 1);
    let scores = &scratch.scores;
    // The pair index tie-break makes the key unique, so the unstable sort is
    // deterministic and avoids the stable sort's merge-buffer allocation.
    scratch.order.sort_unstable_by_key(|&i| (scores[i], i));

    // Union-find over original group slots; each merge joins slot i+1 into
    // the set containing slot i.
    scratch.parent.clear();
    scratch.parent.extend(0..groups.len());
    let parent = &mut scratch.parent;
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut remaining = groups.len();
    for &i in &scratch.order {
        if remaining <= max_groups {
            break;
        }
        let left = find(parent, i);
        let right = find(parent, i + 1);
        if left != right {
            parent[right] = left;
            remaining -= 1;
        }
    }

    // Collapse to final groups, preserving order; each set is a contiguous
    // span because only adjacent pairs merge, so the write cursor never
    // overtakes the read cursor.
    let mut write = 0;
    let mut last_root: Option<usize> = None;
    for i in 0..groups.len() {
        let root = find(parent, i);
        let g = groups[i];
        match last_root {
            Some(r) if r == root => {
                let tail = &mut groups[write - 1];
                tail.count += g.count;
                tail.exponent = tail.exponent.max(g.exponent);
            }
            _ => {
                groups[write] = g;
                write += 1;
                last_root = Some(root);
            }
        }
    }
    groups.truncate(write);
}

/// Merging with score recomputation after every merge — the refinement the
/// paper mentions and rejects for MCU deployment (§4.3: "an algorithm that
/// updates scores after each merge yields a better approximation" but "the
/// benefits … are not worth the overhead on an MCU").
///
/// Worst-case `O(g²)` versus the one-shot version's `O(g log g)`.
pub fn merge_groups_rescoring(mut groups: Vec<Group>, max_groups: usize) -> Vec<Group> {
    let max_groups = max_groups.max(1);
    while groups.len() > max_groups {
        let (best, _) = groups
            .windows(2)
            .enumerate()
            .map(|(i, pair)| {
                let score = pair[0].count as i64
                    + pair[1].count as i64
                    + 2 * (i64::from(pair[0].exponent) - i64::from(pair[1].exponent)).abs();
                (i, score)
            })
            .min_by_key(|&(i, score)| (score, i))
            .expect("len > max_groups >= 1 implies an adjacent pair");
        groups[best] = Group {
            count: groups[best].count + groups[best + 1].count,
            exponent: groups[best].exponent.max(groups[best + 1].exponent),
        };
        groups.remove(best + 1);
    }
    groups
}

/// Selects the maximum group count `G` (paper §4.3): the greatest number of
/// groups whose metadata fits in the bytes left after reserving space for
/// every value at the full original width, but never fewer than `min_groups`
/// (`G0`).
///
/// * `target_bits`: space available for the group directory plus data.
/// * `full_width_bits`: `k · d · w0`, the data size with no compression.
/// * `entry_bits`: directory bits per group (count + exponent + width).
pub fn select_max_groups(
    target_bits: usize,
    full_width_bits: usize,
    entry_bits: usize,
    min_groups: usize,
) -> usize {
    let spare = target_bits.saturating_sub(full_width_bits);
    let by_space = spare.checked_div(entry_bits).unwrap_or(0);
    by_space.max(min_groups)
}

/// Round-robin width assignment (§4.4): every group starts at the widest
/// uniform feasible base, then groups take single-bit increments while the
/// data budget allows, mimicking fractional widths.
pub fn assign_widths(
    groups: &[Group],
    features: usize,
    full_width: u8,
    data_budget_bits: usize,
) -> Vec<u8> {
    let mut widths = Vec::new();
    assign_widths_into(groups, features, full_width, data_budget_bits, &mut widths);
    widths
}

/// Allocation-reusing form of [`assign_widths`]: clears `widths` and fills
/// it with one width per group (left empty when there are no values, like
/// the owning form's empty return).
pub fn assign_widths_into(
    groups: &[Group],
    features: usize,
    full_width: u8,
    data_budget_bits: usize,
    widths: &mut Vec<u8>,
) {
    widths.clear();
    let total_values: usize = groups.iter().map(|g| g.count * features).sum();
    if total_values == 0 {
        return;
    }
    let base = (data_budget_bits / total_values).min(usize::from(full_width)) as u8;
    widths.resize(groups.len(), base);
    let mut used: usize = total_values * usize::from(base);
    loop {
        let mut changed = false;
        for (i, g) in groups.iter().enumerate() {
            let cost = g.count * features;
            if widths[i] < full_width && used + cost <= data_budget_bits {
                widths[i] += 1;
                used += cost;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Splits groups to improve byte utilization (§4.3: "by expanding the
/// number of groups when possible, AGE reduces space wasted on padding").
///
/// A single homogeneous-exponent group gives the round-robin assignment no
/// granularity: its bump unit is the whole batch, so up to one bit per
/// value can go to padding. Splitting a run costs one directory entry
/// (`entry_bits`) but shrinks the bump unit. This routine simulates the
/// §4.4 assignment for each candidate group count up to `max_groups` and
/// keeps the partition with the fewest wasted bits. Deterministic and
/// cheap (`max_groups` is small), so an MCU can afford it.
///
/// `avail_bits` is the space for directory + data together.
pub fn optimize_partition(
    groups: Vec<Group>,
    features: usize,
    full_width: u8,
    avail_bits: usize,
    entry_bits: usize,
    max_groups: usize,
) -> Vec<Group> {
    let mut groups = groups;
    optimize_partition_in_place(
        &mut groups,
        features,
        full_width,
        avail_bits,
        entry_bits,
        max_groups,
        &mut Vec::new(),
        &mut Vec::new(),
    );
    groups
}

/// Allocation-reusing form of [`optimize_partition`]: instead of cloning the
/// whole partition at every candidate improvement, it records each split's
/// index in `split_log` and — once the search stops — rewinds the splits
/// beyond the best step in reverse order (a split is its own inverse: merge
/// the two halves back at the recorded index). `trial_widths` backs the
/// per-candidate width simulation.
#[allow(clippy::too_many_arguments)]
pub fn optimize_partition_in_place(
    groups: &mut Vec<Group>,
    features: usize,
    full_width: u8,
    avail_bits: usize,
    entry_bits: usize,
    max_groups: usize,
    split_log: &mut Vec<usize>,
    trial_widths: &mut Vec<u8>,
) {
    let k: usize = groups.iter().map(|g| g.count).sum();
    if k == 0 || groups.is_empty() {
        return;
    }
    let cap = max_groups.min(k).max(groups.len());
    // Objective: maximize the bits that actually carry measurement data.
    // Directory growth is only worthwhile when it buys strictly more data
    // bits, so ties keep the smaller partition.
    fn used_of(
        candidate: &[Group],
        features: usize,
        full_width: u8,
        avail_bits: usize,
        entry_bits: usize,
        widths: &mut Vec<u8>,
    ) -> usize {
        let dir = candidate.len() * entry_bits;
        let data_budget = avail_bits.saturating_sub(dir);
        assign_widths_into(candidate, features, full_width, data_budget, widths);
        candidate
            .iter()
            .zip(widths.iter())
            .map(|(g, &w)| g.count * features * usize::from(w))
            .sum()
    }

    split_log.clear();
    let mut best_used = used_of(
        groups,
        features,
        full_width,
        avail_bits,
        entry_bits,
        trial_widths,
    );
    // Number of leading entries of `split_log` in the best partition so far.
    let mut best_splits = 0;
    while groups.len() < cap {
        // Split the group with the most measurements into two halves.
        let (idx, _) = groups
            .iter()
            .enumerate()
            .max_by_key(|(i, g)| (g.count, usize::MAX - i))
            .expect("non-empty by construction");
        if groups[idx].count < 2 {
            break;
        }
        let g = groups[idx];
        let left = Group {
            count: g.count / 2 + g.count % 2,
            exponent: g.exponent,
        };
        let right = Group {
            count: g.count / 2,
            exponent: g.exponent,
        };
        groups[idx] = left;
        groups.insert(idx + 1, right);
        split_log.push(idx);
        let used = used_of(
            groups,
            features,
            full_width,
            avail_bits,
            entry_bits,
            trial_widths,
        );
        if used > best_used {
            best_used = used;
            best_splits = split_log.len();
        } else if used + 4 * entry_bits < best_used {
            // The directory cost now dominates any granularity gain.
            break;
        }
    }
    // Rewind to the best partition: undo the splits past `best_splits` in
    // reverse, so every logged index refers to the layout it was made in.
    while split_log.len() > best_splits {
        let idx = split_log.pop().expect("loop condition implies non-empty");
        groups[idx].count += groups[idx + 1].count;
        groups.remove(idx + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Batch;

    #[test]
    fn exponents_take_feature_max() {
        let b = Batch::new(vec![0, 1], vec![0.4, 3.0, 0.1, 0.2]).unwrap();
        let e = measurement_exponents(&b, 16);
        assert_eq!(e, vec![3, 1]); // 3.0 needs n=3; both small in second row
    }

    #[test]
    fn exponents_clamp_to_max() {
        let b = Batch::new(vec![0], vec![1e9]).unwrap();
        assert_eq!(measurement_exponents(&b, 12), vec![12]);
    }

    #[test]
    fn rle_forms_maximal_runs() {
        let groups = form_groups(&[2, 2, 2, 5, 5, 1]);
        assert_eq!(
            groups,
            vec![
                Group {
                    count: 3,
                    exponent: 2
                },
                Group {
                    count: 2,
                    exponent: 5
                },
                Group {
                    count: 1,
                    exponent: 1
                },
            ]
        );
        assert!(form_groups(&[]).is_empty());
    }

    #[test]
    fn merge_noop_when_within_cap() {
        let groups = form_groups(&[1, 2, 1]);
        assert_eq!(merge_groups(groups.clone(), 3), groups);
        assert_eq!(merge_groups(groups.clone(), 10), groups);
    }

    #[test]
    fn merge_prefers_small_similar_groups() {
        // Pairs: (a,b) score 1+1+2*1=4, (b,c) score 1+10+2*0=11.
        let groups = vec![
            Group {
                count: 1,
                exponent: 3,
            },
            Group {
                count: 1,
                exponent: 4,
            },
            Group {
                count: 10,
                exponent: 4,
            },
        ];
        let merged = merge_groups(groups, 2);
        assert_eq!(
            merged,
            vec![
                Group {
                    count: 2,
                    exponent: 4
                },
                Group {
                    count: 10,
                    exponent: 4
                }
            ]
        );
    }

    #[test]
    fn merge_takes_max_exponent() {
        let groups = vec![
            Group {
                count: 2,
                exponent: 7,
            },
            Group {
                count: 2,
                exponent: 3,
            },
        ];
        let merged = merge_groups(groups, 1);
        assert_eq!(
            merged,
            vec![Group {
                count: 4,
                exponent: 7
            }]
        );
    }

    #[test]
    fn merge_to_one_group_preserves_count() {
        let groups = form_groups(&[1, 2, 3, 4, 5, 4, 3, 2, 1]);
        let merged = merge_groups(groups, 1);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].count, 9);
        assert_eq!(merged[0].exponent, 5);
    }

    #[test]
    fn merge_cascade_through_shared_groups() {
        // Four unit groups; merging (0,1) and (1,2) must cascade into one
        // span containing slots 0..=2.
        let groups = vec![
            Group {
                count: 1,
                exponent: 1,
            },
            Group {
                count: 1,
                exponent: 1,
            },
            Group {
                count: 1,
                exponent: 1,
            },
            Group {
                count: 50,
                exponent: 9,
            },
        ];
        let merged = merge_groups(groups, 2);
        assert_eq!(
            merged,
            vec![
                Group {
                    count: 3,
                    exponent: 1
                },
                Group {
                    count: 50,
                    exponent: 9
                }
            ]
        );
    }

    #[test]
    fn rescoring_merge_respects_cap_and_counts() {
        let groups = form_groups(&[1, 2, 3, 4, 5, 6, 7, 8]);
        for cap in 1..=8 {
            let merged = merge_groups_rescoring(groups.clone(), cap);
            assert!(merged.len() <= cap);
            assert_eq!(merged.iter().map(|g| g.count).sum::<usize>(), 8);
        }
    }

    #[test]
    fn rescoring_merge_matches_one_shot_on_easy_inputs() {
        // When pair scores are well separated both algorithms agree.
        let groups = vec![
            Group {
                count: 1,
                exponent: 2,
            },
            Group {
                count: 1,
                exponent: 2,
            },
            Group {
                count: 40,
                exponent: 9,
            },
        ];
        assert_eq!(
            merge_groups(groups.clone(), 2),
            merge_groups_rescoring(groups, 2)
        );
    }

    #[test]
    fn rescoring_merge_handles_chained_merges() {
        // After merging the two cheapest, the combined group's score rises,
        // steering the next merge elsewhere — the case one-shot gets wrong.
        let groups = vec![
            Group {
                count: 1,
                exponent: 1,
            },
            Group {
                count: 1,
                exponent: 1,
            },
            Group {
                count: 2,
                exponent: 1,
            },
            Group {
                count: 3,
                exponent: 8,
            },
            Group {
                count: 3,
                exponent: 8,
            },
        ];
        let merged = merge_groups_rescoring(groups, 2);
        assert_eq!(merged.len(), 2);
        // The small exponent-1 groups coalesce; the exponent-8 pair stays
        // merged separately, keeping exponents tight.
        assert_eq!(merged[0].exponent, 1);
        assert_eq!(merged[1].exponent, 8);
    }

    #[test]
    fn assign_widths_round_robin_fills_budget() {
        let groups = vec![
            Group {
                count: 10,
                exponent: 3
            };
            5
        ];
        // 5 groups × 10 measurements × 6 features = 300 values.
        let widths = assign_widths(&groups, 6, 16, 1650);
        let used: usize = groups
            .iter()
            .zip(&widths)
            .map(|(g, &w)| g.count * 6 * usize::from(w))
            .sum();
        assert!(used <= 1650);
        assert!(1650 - used < 60, "waste {}", 1650 - used);
        assert!(widths.iter().all(|&w| w == 5 || w == 6));
    }

    #[test]
    fn optimize_partition_splits_homogeneous_runs() {
        // One group of 50: the bump unit is 300 bits, wasting ~170 of the
        // leftover budget. Splitting must recover most of it.
        let groups = vec![Group {
            count: 50,
            exponent: 2,
        }];
        let avail = 1686; // bits for directory + data
        let best = optimize_partition(groups, 6, 16, avail, 18, 6);
        assert!(best.len() > 1, "should have split");
        assert_eq!(best.iter().map(|g| g.count).sum::<usize>(), 50);
        assert!(best.iter().all(|g| g.exponent == 2));
        // Waste with the chosen partition is under one value-bump.
        let dir = best.len() * 18;
        let widths = assign_widths(&best, 6, 16, avail - dir);
        let used: usize = best
            .iter()
            .zip(&widths)
            .map(|(g, &w)| g.count * 6 * usize::from(w))
            .sum();
        assert!(avail - dir - used < 300, "waste {}", avail - dir - used);
    }

    #[test]
    fn optimize_partition_keeps_generous_budgets_unsplit() {
        // Full width already fits: splitting only wastes directory space.
        let groups = vec![Group {
            count: 10,
            exponent: 3,
        }];
        let best = optimize_partition(groups.clone(), 2, 16, 10_000, 18, 50);
        assert_eq!(best, groups);
    }

    #[test]
    fn optimize_partition_handles_edge_cases() {
        assert!(optimize_partition(Vec::new(), 3, 16, 100, 18, 6).is_empty());
        let singleton = vec![Group {
            count: 1,
            exponent: 4,
        }];
        assert_eq!(
            optimize_partition(singleton.clone(), 3, 16, 100, 18, 6),
            singleton
        );
    }

    #[test]
    fn select_max_groups_floors_at_g0() {
        // Over-sampling: no spare bytes at full width => G0.
        assert_eq!(select_max_groups(1000, 5000, 20, 6), 6);
        // Under-sampling: plenty of spare => more groups allowed.
        assert_eq!(select_max_groups(5000, 1000, 20, 6), 200);
    }
}
