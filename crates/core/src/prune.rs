//! Measurement pruning (paper §4.2).
//!
//! When the policy over-samples, even one bit per value may not fit in the
//! target message. AGE removes just enough measurements that every remaining
//! value receives at least `w_min` bits, choosing victims by a distance
//! score that estimates the reconstruction error of dropping them:
//!
//! ```text
//! Dist(x_t) = ||x_t − x_{t+1}||₁ + |α_t − α_{t+1}| / 8
//! ```
//!
//! The time-difference term discourages long collection gaps; the `1/8`
//! factor is chosen so an MCU can apply it with a bit shift. Scores are
//! computed once (the paper notes that incremental rescoring is not worth
//! the MCU overhead).

use crate::batch::Batch;

/// Reusable buffers for [`prune_into`], so steady-state pruning performs no
/// heap allocations once the buffers have grown to the batch size.
#[derive(Debug, Default)]
pub struct PruneScratch {
    scores: Vec<f64>,
    order: Vec<usize>,
    keep: Vec<bool>,
}

/// Distance scores for every measurement in `batch` (the last measurement
/// has no successor and gets an infinite score, so it is never pruned before
/// its predecessors).
pub fn distance_scores(batch: &Batch) -> Vec<f64> {
    let mut scores = Vec::new();
    distance_scores_into(batch, &mut scores);
    scores
}

/// Allocation-reusing form of [`distance_scores`]: clears `scores` and fills
/// it with one score per measurement.
pub fn distance_scores_into(batch: &Batch, scores: &mut Vec<f64>) {
    let k = batch.len();
    scores.clear();
    scores.resize(k, f64::INFINITY);
    for (t, score) in scores.iter_mut().enumerate().take(k.saturating_sub(1)) {
        let a = batch.measurement(t);
        let b = batch.measurement(t + 1);
        let l1: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        let gap = (batch.indices()[t + 1] - batch.indices()[t]) as f64;
        *score = l1 + gap / 8.0;
    }
}

/// Number of measurements to drop so `min_width · (k − ℓ) · d` bits fit in
/// `budget_bits`: the largest ℓ per the paper, i.e. the smallest batch
/// shrink that makes the minimum width feasible. Returns 0 when the batch
/// already fits; may return `k` when nothing fits.
pub fn prune_count(k: usize, features: usize, min_width: u8, budget_bits: usize) -> usize {
    let per_measurement = usize::from(min_width) * features;
    if per_measurement == 0 {
        return 0;
    }
    let max_keep = budget_bits / per_measurement;
    k.saturating_sub(max_keep)
}

/// Removes the `drop` measurements with the smallest distance scores,
/// preserving the order of the survivors.
///
/// Ties are broken toward earlier measurements, matching a deterministic
/// MCU implementation that scans the score array once per removal.
pub fn prune(batch: &Batch, drop: usize) -> Batch {
    let mut scratch = PruneScratch::default();
    let mut out = Batch::empty();
    prune_into(batch, drop, &mut scratch, &mut out);
    out
}

/// Allocation-reusing form of [`prune`]: writes the surviving measurements
/// into `out`, reusing both the scratch buffers and `out`'s allocations.
pub fn prune_into(batch: &Batch, drop: usize, scratch: &mut PruneScratch, out: &mut Batch) {
    let k = batch.len();
    if drop == 0 || k == 0 {
        out.copy_from(batch);
        return;
    }
    if drop >= k {
        out.clear();
        return;
    }
    distance_scores_into(batch, &mut scratch.scores);
    // Select the `drop` smallest scores; tie-break by position. The index
    // tie-break makes the comparator a total order, so the unstable sort is
    // as deterministic as a stable one — without its merge-buffer allocation.
    scratch.order.clear();
    scratch.order.extend(0..k);
    let scores = &scratch.scores;
    scratch.order.sort_unstable_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("scores are never NaN")
            .then(a.cmp(&b))
    });
    scratch.keep.clear();
    scratch.keep.resize(k, true);
    for &victim in scratch.order.iter().take(drop) {
        scratch.keep[victim] = false;
    }
    batch.retain_positions_into(&scratch.keep, out);
}

/// Pruning with incremental score updates — the refinement the paper
/// mentions and rejects for MCU deployment (§4.2: "incrementally updating
/// the Dist scores yields an algorithm with lower error, but we find the
/// overhead is not worth the benefits").
///
/// After each removal, the scores of the victim's neighbours are recomputed
/// against their *new* successors, so the estimate of each drop's error
/// stays exact. Worst-case `O(k·drop)` versus the one-shot `O(k log k)`.
pub fn prune_incremental(batch: &Batch, drop: usize) -> Batch {
    let k = batch.len();
    if drop == 0 || k == 0 {
        return batch.clone();
    }
    if drop >= k {
        return Batch::empty();
    }
    // Doubly-linked positions over the surviving measurements.
    let mut next: Vec<usize> = (1..=k).collect();
    let mut prev: Vec<isize> = (0..k).map(|i| i as isize - 1).collect();
    let mut alive = vec![true; k];

    let score_of = |t: usize, succ: usize, batch: &Batch| -> f64 {
        if succ >= batch.len() {
            return f64::INFINITY;
        }
        let a = batch.measurement(t);
        let b = batch.measurement(succ);
        let l1: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        let gap = (batch.indices()[succ] - batch.indices()[t]) as f64;
        l1 + gap / 8.0
    };
    let mut scores: Vec<f64> = (0..k).map(|t| score_of(t, t + 1, batch)).collect();

    for _ in 0..drop {
        // Find the cheapest surviving victim (linear scan, as an MCU would).
        let victim = (0..k)
            .filter(|&t| alive[t])
            .min_by(|&a, &b| {
                scores[a]
                    .partial_cmp(&scores[b])
                    .expect("scores are never NaN")
                    .then(a.cmp(&b))
            })
            .expect("drop < k leaves at least one survivor");
        alive[victim] = false;
        let succ = next[victim];
        let pred = prev[victim];
        if pred >= 0 {
            let pred = pred as usize;
            next[pred] = succ;
            scores[pred] = score_of(pred, succ, batch);
        }
        if succ < k {
            prev[succ] = pred;
        }
    }
    batch.retain_positions(&alive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(indices: Vec<usize>, flat: Vec<f64>) -> Batch {
        Batch::new(indices, flat).unwrap()
    }

    #[test]
    fn scores_combine_value_and_time_distance() {
        let b = batch(vec![0, 2, 10], vec![1.0, 1.5, 1.5]);
        let s = distance_scores(&b);
        assert_eq!(s[0], 0.5 + 2.0 / 8.0);
        assert_eq!(s[1], 0.0 + 8.0 / 8.0);
        assert!(s[2].is_infinite());
    }

    #[test]
    fn multi_feature_scores_use_l1_norm() {
        let b = batch(vec![0, 1], vec![0.0, 1.0, 2.0, 0.0]);
        let s = distance_scores(&b);
        assert_eq!(s[0], 3.0 + 1.0 / 8.0);
    }

    #[test]
    fn prune_count_formula() {
        // k=50, d=6, w_min=5 => 30 bits per measurement.
        // Budget 35 bytes = 280 bits => keep 9, drop 41.
        assert_eq!(prune_count(50, 6, 5, 280), 41);
        // Plenty of budget: no pruning.
        assert_eq!(prune_count(10, 6, 5, 10_000), 0);
        // Nothing fits: drop all.
        assert_eq!(prune_count(4, 6, 5, 20), 4);
    }

    #[test]
    fn prune_removes_lowest_scores_first() {
        // Middle measurement is nearly identical to its successor and close
        // in time: lowest score, pruned first.
        let b = batch(vec![0, 5, 6, 20], vec![0.0, 3.0, 3.01, 9.0]);
        let pruned = prune(&b, 1);
        assert_eq!(pruned.indices(), &[0, 6, 20]);
        assert_eq!(pruned.values(), &[0.0, 3.01, 9.0]);
    }

    #[test]
    fn prune_preserves_order() {
        let b = batch(vec![0, 1, 2, 3, 4], vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        let pruned = prune(&b, 2);
        assert!(pruned.indices().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(pruned.len(), 3);
    }

    #[test]
    fn prune_zero_is_identity_and_full_is_empty() {
        let b = batch(vec![1, 3], vec![0.5, 0.6]);
        assert_eq!(prune(&b, 0), b);
        assert!(prune(&b, 2).is_empty());
        assert!(prune(&b, 99).is_empty());
        assert!(prune(&Batch::empty(), 3).is_empty());
    }

    #[test]
    fn last_measurement_survives_longest() {
        let b = batch(vec![0, 1, 2], vec![0.0, 0.0, 0.0]);
        let pruned = prune(&b, 2);
        assert_eq!(pruned.indices(), &[2]);
    }

    #[test]
    fn incremental_prune_agrees_on_single_drops() {
        // With one victim the two algorithms are identical.
        let b = batch(vec![0, 5, 6, 20], vec![0.0, 3.0, 3.01, 9.0]);
        assert_eq!(prune(&b, 1), prune_incremental(&b, 1));
    }

    #[test]
    fn incremental_prune_avoids_gap_pileup() {
        // One-shot pruning can drop two *adjacent* cheap measurements,
        // creating a larger combined gap than rescoring would allow.
        let values: Vec<f64> = vec![0.0, 0.05, 0.1, 0.15, 5.0, 5.05, 9.0];
        let b = batch((0..7).collect(), values);
        let inc = prune_incremental(&b, 3);
        assert_eq!(inc.len(), 4);
        // Survivors still bracket both level shifts.
        assert!(inc.values().iter().any(|&v| v > 4.0 && v < 6.0));
        assert!(inc.values().contains(&9.0));
    }

    #[test]
    fn incremental_prune_edge_cases() {
        let b = batch(vec![1, 3], vec![0.5, 0.6]);
        assert_eq!(prune_incremental(&b, 0), b);
        assert!(prune_incremental(&b, 2).is_empty());
        assert!(prune_incremental(&Batch::empty(), 1).is_empty());
    }

    #[test]
    fn incremental_prune_reduces_reconstruction_error_on_average() {
        // The paper's claim: rescoring yields lower error. Check on a bumpy
        // signal where removal order matters.
        let values: Vec<f64> = (0..60)
            .map(|t| ((t as f64) * 0.7).sin() * ((t % 13) as f64 * 0.1))
            .collect();
        let b = batch((0..60).collect(), values.clone());
        let err = |pruned: &Batch| -> f64 {
            // Piecewise-linear reconstruction error against the original.
            let mut total = 0.0;
            for w in pruned.indices().windows(2) {
                let (i0, i1) = (w[0], w[1]);
                let (v0, v1) = (values[i0], values[i1]);
                for (t, &truth) in values.iter().enumerate().take(i1 + 1).skip(i0) {
                    let alpha = (t - i0) as f64 / (i1 - i0) as f64;
                    total += (v0 + alpha * (v1 - v0) - truth).abs();
                }
            }
            total
        };
        let one_shot = err(&prune(&b, 25));
        let rescored = err(&prune_incremental(&b, 25));
        assert!(
            rescored <= one_shot * 1.05,
            "rescoring should not be meaningfully worse: {rescored} vs {one_shot}"
        );
    }
}
