//! Reusable working memory for the encode hot path.
//!
//! AGE's premise (§4.5) is that the encoder must be cheap enough to run on
//! an MCU, where heap churn is both a cost and a fragmentation hazard. Every
//! intermediate the encoders need — the pruned batch, the exponent sequence,
//! the group arena, width assignments, and assorted index/score buffers —
//! lives in one [`EncodeScratch`] that the caller owns and threads through
//! [`Encoder::encode_into`](crate::Encoder::encode_into). After a warm-up
//! call has grown each buffer to its steady-state size, encoding performs
//! zero heap allocations (enforced by the counting-allocator test in
//! `tests/alloc.rs`).

use crate::batch::Batch;
use crate::group::{Group, MergeScratch};
use crate::prune::PruneScratch;

/// Caller-owned scratch buffers shared by every [`crate::Encoder`]
/// implementation in this crate.
///
/// One scratch can be reused across different encoders and batch sizes; the
/// buffers simply grow to the high-water mark. The contents after a call are
/// unspecified — only the allocations are meaningful.
///
/// # Examples
///
/// ```
/// use age_core::{AgeEncoder, Batch, BatchConfig, EncodeScratch, Encoder};
/// use age_fixed::Format;
///
/// let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;
/// let encoder = AgeEncoder::new(220);
/// let mut scratch = EncodeScratch::new();
/// let mut message = Vec::new();
/// for step in 0..3 {
///     let batch = Batch::new(vec![step, step + 10], vec![0.5; 12])?;
///     encoder.encode_into(&batch, &cfg, &mut scratch, &mut message)?;
///     assert_eq!(message.len(), 220);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Output of the pruning stage (§4.2).
    pub(crate) pruned: Batch,
    /// Score/order/keep buffers for [`crate::prune::prune_into`].
    pub(crate) prune: PruneScratch,
    /// Per-measurement exponents (§4.3).
    pub(crate) exponents: Vec<u8>,
    /// Group arena: formed, merged, and split in place.
    pub(crate) groups: Vec<Group>,
    /// Final per-group bit widths (§4.4).
    pub(crate) widths: Vec<u8>,
    /// Order/score/union-find buffers for group merging.
    pub(crate) merge: MergeScratch,
    /// Split log for partition optimization.
    pub(crate) split_log: Vec<usize>,
    /// Width buffer for partition candidates.
    pub(crate) trial_widths: Vec<u8>,
    /// Per-feature previous raw values for delta encoding.
    pub(crate) prev_raw: Vec<i64>,
    /// Lane buffer of quantized two's complement patterns, filled per group
    /// by `Format::quantize_bits_slice` and drained by
    /// `BitWriter::write_fields` (also reused by word-level decoding).
    pub(crate) quant_bits: Vec<u64>,
    /// Lane buffer of quantized raw integers for the delta codec.
    pub(crate) quant_raw: Vec<i64>,
}

impl EncodeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        EncodeScratch::default()
    }
}
