//! Lossless compression of sensor batches — and why it leaks (paper §7).
//!
//! Low-power systems often compress batches with delta coding and
//! variable-length integers [90]. Compression is *content-dependent*: calm
//! signals produce small deltas and short varints, volatile signals the
//! opposite. So even a sensor with non-adaptive Uniform sampling leaks the
//! event through its compressed message sizes — the CRIME/BREACH effect on
//! sensor telemetry. The paper excludes lossless compression from its
//! threat model for exactly this reason; this module makes the effect
//! measurable (see the `compression` extension experiment).
//!
//! The codec: per measurement feature, raw fixed-point values are delta
//! encoded against the previous measurement, zig-zag mapped, and written as
//! LEB128 varints; indices are gap-encoded the same way.

use crate::batch::{Batch, BatchConfig};
use crate::error::{DecodeError, EncodeError};
use crate::scratch::EncodeScratch;
use crate::Encoder;

/// Zig-zag maps a signed integer to unsigned (small magnitudes stay small).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a LEB128 varint.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or(DecodeError::Corrupt("varint ran off the end"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError::Corrupt("varint too long"));
        }
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Delta + varint lossless batch codec.
///
/// **Deliberately leaky**: the output length depends on the measurement
/// *values*, not just their count. Provided to demonstrate the §7 pitfall,
/// not as a defense.
///
/// # Examples
///
/// ```
/// use age_core::{Batch, BatchConfig, DeltaCodec, Encoder};
/// use age_fixed::Format;
///
/// let cfg = BatchConfig::new(50, 1, Format::new(16, 13)?)?;
/// let codec = DeltaCodec;
/// // A flat batch compresses far better than a volatile one of equal size.
/// let flat = Batch::new((0..40).collect(), vec![1.0; 40])?;
/// let wild = Batch::new((0..40).collect(), (0..40).map(|i| ((i * i) % 7) as f64 - 3.0).collect())?;
/// let flat_len = codec.encode(&flat, &cfg)?.len();
/// let wild_len = codec.encode(&wild, &cfg)?.len();
/// assert!(flat_len < wild_len); // the leak
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaCodec;

impl DeltaCodec {
    fn validate(batch: &Batch, cfg: &BatchConfig) -> Result<(), EncodeError> {
        if batch.len() > cfg.max_len() {
            return Err(EncodeError::BatchTooLarge {
                len: batch.len(),
                max: cfg.max_len(),
            });
        }
        if let Some(&last) = batch.indices().last() {
            if last >= cfg.max_len() {
                return Err(EncodeError::IndexOutOfRange {
                    index: last,
                    max: cfg.max_len(),
                });
            }
        }
        if !batch.is_empty() && batch.features() != cfg.features() {
            return Err(EncodeError::FeatureMismatch {
                got: batch.features(),
                expected: cfg.features(),
            });
        }
        Ok(())
    }
}

impl Encoder for DeltaCodec {
    fn name(&self) -> &'static str {
        "Delta"
    }

    fn is_fixed_length(&self) -> bool {
        false
    }

    fn encode_into(
        &self,
        batch: &Batch,
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        Self::validate(batch, cfg)?;
        let fmt = cfg.format();
        let d = cfg.features();
        out.clear();
        write_varint(out, batch.len() as u64);
        // Gap-encoded indices.
        let mut prev_idx = 0usize;
        for (t, &idx) in batch.indices().iter().enumerate() {
            let gap = if t == 0 { idx } else { idx - prev_idx };
            write_varint(out, gap as u64);
            prev_idx = idx;
        }
        // Delta-encoded raw values per feature column. Quantization runs
        // once over the whole batch as a lane loop; the varint emission then
        // works on integers only.
        let raws = &mut scratch.quant_raw;
        fmt.quantize_slice(batch.values(), raws);
        let prev_raw = &mut scratch.prev_raw;
        prev_raw.clear();
        prev_raw.resize(d, 0);
        for row in raws.chunks_exact(d.max(1)) {
            for (prev, &raw) in prev_raw.iter_mut().zip(row) {
                write_varint(out, zigzag(raw - *prev));
                *prev = raw;
            }
        }
        Ok(())
    }

    fn decode(&self, message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError> {
        let fmt = cfg.format();
        let d = cfg.features();
        let mut pos = 0usize;
        let k = read_varint(message, &mut pos)? as usize;
        if k > cfg.max_len() {
            return Err(DecodeError::Corrupt(
                "measurement count exceeds batch maximum",
            ));
        }
        let mut indices = Vec::with_capacity(k);
        let mut idx = 0usize;
        for t in 0..k {
            let gap = read_varint(message, &mut pos)? as usize;
            idx = if t == 0 { gap } else { idx + gap };
            if idx >= cfg.max_len() {
                return Err(DecodeError::Corrupt("decoded index out of range"));
            }
            indices.push(idx);
        }
        let mut values = Vec::with_capacity(k * d);
        let mut prev_raw = vec![0i64; d];
        for _ in 0..k {
            for prev in prev_raw.iter_mut() {
                let delta = unzigzag(read_varint(message, &mut pos)?);
                let raw = prev.wrapping_add(delta);
                if raw > fmt.max_raw() || raw < fmt.min_raw() {
                    return Err(DecodeError::Corrupt("decoded value outside format range"));
                }
                *prev = raw;
                values.push(fmt.dequantize(raw));
            }
        }
        Batch::new(indices, values).map_err(|_| DecodeError::Corrupt("decoded batch invalid"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use age_fixed::Format;

    fn cfg() -> BatchConfig {
        BatchConfig::new(100, 2, Format::new(16, 10).unwrap()).unwrap()
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            -1_000_000i64,
            -2,
            -1,
            0,
            1,
            2,
            1_000_000,
            i64::MIN / 4,
            i64::MAX / 4,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_roundtrip() {
        let mut out = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut out, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, out.len());
    }

    #[test]
    fn codec_is_lossless_for_representable_values() {
        let c = cfg();
        let fmt = c.format();
        let values: Vec<f64> = (0..60)
            .map(|i| fmt.round_trip((i as f64 * 0.37).sin() * 10.0))
            .collect();
        let batch = Batch::new((0..30).map(|i| i * 3).collect(), values.clone()).unwrap();
        let codec = DeltaCodec;
        let decoded = codec
            .decode(&codec.encode(&batch, &c).unwrap(), &c)
            .unwrap();
        assert_eq!(decoded.indices(), batch.indices());
        assert_eq!(decoded.values(), values.as_slice());
    }

    #[test]
    fn compression_ratio_depends_on_volatility() {
        // The §7 leak: same k, very different sizes.
        let c = cfg();
        let codec = DeltaCodec;
        let flat = Batch::new((0..50).collect(), vec![0.5; 100]).unwrap();
        let wild = Batch::new(
            (0..50).collect(),
            // Alternate per *measurement* so the per-feature deltas swing.
            (0..100)
                .map(|i| if (i / 2) % 2 == 0 { 30.0 } else { -30.0 })
                .collect(),
        )
        .unwrap();
        let flat_len = codec.encode(&flat, &c).unwrap().len();
        let wild_len = codec.encode(&wild, &c).unwrap().len();
        assert!(
            wild_len > flat_len * 2,
            "flat {flat_len} vs wild {wild_len}"
        );
    }

    #[test]
    fn beats_raw_encoding_on_smooth_data() {
        let c = cfg();
        let fmt = c.format();
        let values: Vec<f64> = (0..200)
            .map(|i| fmt.round_trip((i as f64 * 0.05).sin()))
            .collect();
        let batch = Batch::new((0..100).collect(), values).unwrap();
        let compressed = DeltaCodec.encode(&batch, &c).unwrap().len();
        let raw = c.standard_message_bytes(100);
        assert!(compressed < raw, "compressed {compressed} vs raw {raw}");
    }

    #[test]
    fn decode_rejects_garbage() {
        let c = cfg();
        let codec = DeltaCodec;
        assert!(codec.decode(&[], &c).is_err());
        assert!(codec.decode(&[0xFF; 3], &c).is_err());
        // A huge claimed count.
        let mut msg = Vec::new();
        write_varint(&mut msg, 1_000_000);
        assert!(codec.decode(&msg, &c).is_err());
    }

    #[test]
    fn empty_batch_roundtrips() {
        let c = cfg();
        let codec = DeltaCodec;
        let out = codec
            .decode(&codec.encode(&Batch::empty(), &c).unwrap(), &c)
            .unwrap();
        assert!(out.is_empty());
    }
}
