//! Feature-gated glue between the encoders and the `age-telemetry` sinks.
//!
//! Only compiled with the `telemetry` feature; every call site is behind
//! `#[cfg(feature = "telemetry")]`, so with the feature off the encoders
//! contain no observability code at all. This matters for the defense
//! itself: instrumentation that conditions work on batch content could
//! reintroduce a timing side-channel on deployed sensors, so MCU builds
//! compile it out entirely.

use age_telemetry::metrics::global;
use age_telemetry::BatchRecord;

/// Updates the process-wide encode counters. Called on every encode when
/// the feature is on, whether or not a sink is installed — the counters
/// are lock-free atomics, cheap enough to leave unconditional.
pub(crate) fn count_encode(input_len: usize, kept_len: usize, message_len: usize, total_ns: u64) {
    global::ENCODE_CALLS.add(1);
    global::ENCODE_NANOS.add(total_ns);
    global::PRUNED_MEASUREMENTS.add(input_len.saturating_sub(kept_len) as u64);
    global::MESSAGE_BYTES.record(message_len as u64);
}

/// Completes and emits a per-batch record: derives the tail padding from
/// the other sections, stamps the caller's stream context (label + batch
/// number), and hands the record to the active sink. Callers only build
/// records when [`age_telemetry::active`] is true.
pub(crate) fn emit_record(mut rec: BatchRecord) {
    rec.padding_bits =
        (rec.message_len * 8).saturating_sub(rec.header_bits + rec.directory_bits + rec.data_bits);
    age_telemetry::stamp(&mut rec);
    age_telemetry::emit(&rec);
}
