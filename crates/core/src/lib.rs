//! Adaptive Group Encoding (AGE): fixed-length lossy encoding of adaptively
//! sampled measurement batches.
//!
//! This crate implements the primary contribution of *Protecting Adaptive
//! Sampling from Information Leakage on Low-Power Sensors* (Kannan &
//! Hoffmann, ASPLOS 2022). Adaptive sampling policies leak the sensed event
//! through the size of batched messages, because the batch size is
//! proportional to the data-dependent collection rate. AGE closes this
//! side-channel by encoding *every* batch into a message of exactly the same
//! byte length, using fixed-point quantization refined by three
//! transformations:
//!
//! 1. **Measurement pruning** (§4.2, [`prune`]) drops just enough low-impact
//!    measurements that every remaining value receives at least
//!    [`AgeEncoder::MIN_WIDTH`] bits.
//! 2. **Exponent-aware group formation** (§4.3, [`group`]) run-length encodes
//!    the per-measurement exponents, then greedily merges adjacent groups so
//!    at most `G` groups remain.
//! 3. **Per-group quantization** (§4.4) assigns each group a bit width by a
//!    round-robin process that mimics fractional widths, then packs the
//!    quantized values into a byte-exact buffer.
//!
//! Alongside [`AgeEncoder`], the crate provides the paper's baselines —
//! [`StandardEncoder`] (variable-length, leaks sizes) and [`PaddedEncoder`]
//! (BuFLO-style padding) — and the §5.6 ablation variants [`SingleEncoder`],
//! [`UnshiftedEncoder`], and [`PrunedEncoder`].
//!
//! # Examples
//!
//! ```
//! use age_core::{AgeEncoder, Batch, BatchConfig, Encoder};
//! use age_fixed::Format;
//!
//! // A sensor batching up to 50 six-feature measurements of 16-bit values.
//! let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;
//! let encoder = AgeEncoder::new(220);
//!
//! // Whatever the policy collected — 3 values here, 48 next time — the
//! // message is always exactly 220 bytes.
//! let batch = Batch::new(vec![0, 9, 30], vec![0.5; 18])?;
//! let message = encoder.encode(&batch, &cfg)?;
//! assert_eq!(message.len(), 220);
//!
//! let decoded = encoder.decode(&message, &cfg)?;
//! assert_eq!(decoded.indices(), &[0, 9, 30]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod baselines;
mod batch;
mod compress;
mod encoder;
mod error;
pub mod group;
mod inspect;
pub mod mcu;
pub mod prune;
mod scratch;
pub mod target;
#[cfg(feature = "telemetry")]
mod telemetry;
mod variants;

pub use baselines::{PaddedEncoder, StandardEncoder};
pub use batch::{Batch, BatchConfig, ConfigError};
pub use compress::DeltaCodec;
pub use encoder::AgeEncoder;
pub use error::{BatchError, DecodeError, EncodeError};
pub use inspect::{inspect_message, GroupLayout, MessageLayout};
pub use scratch::EncodeScratch;
pub use variants::{PrunedEncoder, SingleEncoder, UnshiftedEncoder};

/// A batch encoder: turns collected measurements into message bytes and back.
///
/// Implementations fall in two classes: *leaky* encoders whose output length
/// depends on the batch ([`StandardEncoder`]), and *fixed-length* encoders
/// whose output length is a constant for a given configuration
/// ([`AgeEncoder`], [`PaddedEncoder`], and the ablation variants).
pub trait Encoder {
    /// Short name used in experiment reports (e.g. `"AGE"`, `"Standard"`).
    fn name(&self) -> &'static str;

    /// `true` if every encoded message has the same length regardless of the
    /// batch content — the property that closes the size side-channel.
    fn is_fixed_length(&self) -> bool;

    /// Encodes a batch into `out` (plaintext; encryption framing is applied
    /// by the caller), reusing the allocations in `scratch` and `out`.
    ///
    /// This is the primary entry point: after a warm-up call has grown the
    /// scratch buffers, every implementation in this crate encodes without
    /// touching the heap, which is what makes the encoder viable on an MCU
    /// (§4.5) and keeps the simulation sweep allocation-quiet. `out` is
    /// cleared first, so it always holds exactly one message on success; on
    /// error its contents are unspecified.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if the batch is inconsistent with `cfg` or the
    /// encoder's target size cannot accommodate its own framing.
    fn encode_into(
        &self,
        batch: &Batch,
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError>;

    /// Encodes a batch into freshly allocated message bytes — a convenience
    /// wrapper over [`Encoder::encode_into`] for one-shot callers.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if the batch is inconsistent with `cfg` or the
    /// encoder's target size cannot accommodate its own framing.
    fn encode(&self, batch: &Batch, cfg: &BatchConfig) -> Result<Vec<u8>, EncodeError> {
        let mut scratch = EncodeScratch::new();
        let mut out = Vec::new();
        self.encode_into(batch, cfg, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Decodes message bytes back into a (lossy) batch.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the message is truncated or internally
    /// inconsistent.
    fn decode(&self, message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError>;

    /// Decodes message bytes into a caller-owned batch, reusing `out`'s and
    /// `scratch`'s allocations.
    ///
    /// The default implementation delegates to [`Encoder::decode`] and
    /// replaces `out` wholesale; encoders on the receiver hot path (notably
    /// [`AgeEncoder`]) override it to decode without touching the heap once
    /// warm, completing the zero-allocation seal→open→decode round trip. On
    /// error `out`'s contents are unspecified.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the message is truncated or internally
    /// inconsistent.
    fn decode_into(
        &self,
        message: &[u8],
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Batch,
    ) -> Result<(), DecodeError> {
        let _ = scratch;
        *out = self.decode(message, cfg)?;
        Ok(())
    }
}
