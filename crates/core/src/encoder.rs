//! The AGE encoder (paper §4).

use age_fixed::{BitReader, BitWriter, Format};

use crate::batch::{Batch, BatchConfig};
use crate::error::{DecodeError, EncodeError};
use crate::group::{
    assign_widths_into, form_groups_into, measurement_exponents_into, merge_groups_in_place,
    merge_groups_rescoring, optimize_partition_in_place, select_max_groups, Group,
};
use crate::prune::{prune_count, prune_incremental, prune_into};
use crate::scratch::EncodeScratch;

/// Bits used to store a group's exponent in the directory.
pub(crate) const EXP_BITS: u8 = 6;
/// Bits used to store a group's width in the directory.
pub(crate) const WIDTH_BITS: u8 = 6;
/// Bits of the `k` header field.
pub(crate) const K_BITS: usize = 16;
/// Bits of the group-count header field.
pub(crate) const GROUP_COUNT_BITS: usize = 8;
/// Maximum representable group count (8-bit header field).
pub(crate) const MAX_GROUPS: usize = 255;

/// Encodes every batch into a message of exactly the configured byte length
/// (paper §4): pruning, exponent-aware grouping, and per-group quantization
/// with round-robin width assignment.
///
/// The target length is the full message-body size; callers derive it from
/// the energy budget via [`crate::target`] and subtract cipher framing.
///
/// # Examples
///
/// ```
/// use age_core::{AgeEncoder, Batch, BatchConfig, Encoder};
/// use age_fixed::Format;
///
/// let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;
/// let enc = AgeEncoder::new(220);
/// // An over-full batch and a tiny one produce identical lengths.
/// let big = Batch::new((0..50).collect(), vec![0.25; 300])?;
/// let small = Batch::new(vec![7], vec![0.25; 6])?;
/// assert_eq!(enc.encode(&big, &cfg)?.len(), 220);
/// assert_eq!(enc.encode(&small, &cfg)?.len(), 220);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgeEncoder {
    target_bytes: usize,
    min_width: u8,
    min_groups: usize,
    refined: bool,
    split_groups: bool,
}

impl AgeEncoder {
    /// Default minimum bits per value retained by pruning (`w_min`, §4.2).
    pub const MIN_WIDTH: u8 = 5;
    /// Default minimum number of groups (`G0`, §4.3).
    pub const MIN_GROUPS: usize = 6;

    /// Creates an encoder that emits messages of exactly `target_bytes`.
    pub fn new(target_bytes: usize) -> Self {
        AgeEncoder {
            target_bytes,
            min_width: Self::MIN_WIDTH,
            min_groups: Self::MIN_GROUPS,
            refined: false,
            split_groups: true,
        }
    }

    /// Enables or disables the group-split utilization pass (§4.3's
    /// "expanding the number of groups when possible"). On by default;
    /// turning it off reproduces a plain RLE+merge grouping for ablation.
    pub fn with_group_splitting(mut self, split_groups: bool) -> Self {
        self.split_groups = split_groups;
        self
    }

    /// Enables the refinements the paper evaluates but rejects for MCU
    /// deployment (§4.2/§4.3): incremental prune rescoring and per-merge
    /// group rescoring. Slightly lower error at higher compute cost.
    pub fn with_refinement(mut self, refined: bool) -> Self {
        self.refined = refined;
        self
    }

    /// Overrides the pruning width floor `w_min`.
    pub fn with_min_width(mut self, min_width: u8) -> Self {
        self.min_width = min_width.max(1);
        self
    }

    /// Overrides the group floor `G0`.
    pub fn with_min_groups(mut self, min_groups: usize) -> Self {
        self.min_groups = min_groups.clamp(1, MAX_GROUPS);
        self
    }

    /// The fixed message length in bytes.
    pub fn target_bytes(&self) -> usize {
        self.target_bytes
    }

    /// The pruning width floor `w_min`.
    pub fn min_width(&self) -> u8 {
        self.min_width
    }

    /// The group floor `G0`.
    pub fn min_groups(&self) -> usize {
        self.min_groups
    }

    /// Header + bitmask + group-count bits for a configuration.
    fn fixed_bits(cfg: &BatchConfig) -> usize {
        K_BITS + cfg.max_len() + GROUP_COUNT_BITS
    }

    /// Directory bits per group for a configuration.
    fn entry_bits(cfg: &BatchConfig) -> usize {
        usize::from(cfg.count_bits()) + usize::from(EXP_BITS) + usize::from(WIDTH_BITS)
    }

    /// Smallest feasible target in bytes for `cfg` (framing plus one group
    /// directory entry).
    pub fn min_target_bytes(cfg: &BatchConfig) -> usize {
        (Self::fixed_bits(cfg) + Self::entry_bits(cfg)).div_ceil(8)
    }

    fn validate(&self, batch: &Batch, cfg: &BatchConfig) -> Result<(), EncodeError> {
        if batch.len() > cfg.max_len() {
            return Err(EncodeError::BatchTooLarge {
                len: batch.len(),
                max: cfg.max_len(),
            });
        }
        if let Some(&last) = batch.indices().last() {
            if last >= cfg.max_len() {
                return Err(EncodeError::IndexOutOfRange {
                    index: last,
                    max: cfg.max_len(),
                });
            }
        }
        if !batch.is_empty() && batch.features() != cfg.features() {
            return Err(EncodeError::FeatureMismatch {
                got: batch.features(),
                expected: cfg.features(),
            });
        }
        let min = Self::min_target_bytes(cfg);
        if self.target_bytes < min {
            return Err(EncodeError::TargetTooSmall {
                target: self.target_bytes,
                min,
            });
        }
        Ok(())
    }
}

impl crate::Encoder for AgeEncoder {
    fn name(&self) -> &'static str {
        "AGE"
    }

    fn is_fixed_length(&self) -> bool {
        true
    }

    fn encode_into(
        &self,
        batch: &Batch,
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        self.validate(batch, cfg)?;
        let d = cfg.features();
        let w0 = cfg.format().width();
        let target_bits = self.target_bytes * 8;
        let fixed_bits = Self::fixed_bits(cfg);
        let entry_bits = Self::entry_bits(cfg);
        // Disjoint borrows of every scratch buffer, so the pruned batch can
        // stay borrowed while the later stages fill their own buffers.
        let EncodeScratch {
            pruned,
            prune: prune_scratch,
            exponents,
            groups,
            widths,
            merge,
            split_log,
            trial_widths,
            quant_bits,
            ..
        } = scratch;
        #[cfg(feature = "telemetry")]
        let input_len = batch.len();
        #[cfg(feature = "telemetry")]
        let mut stopwatch = age_telemetry::active().then(age_telemetry::Stopwatch::start);
        #[cfg(feature = "telemetry")]
        let mut stage_ns = age_telemetry::StageTimings::default();

        // §4.2: prune so every survivor gets at least `min_width` bits, with
        // directory space reserved for `G0` groups.
        let prune_budget = target_bits
            .saturating_sub(fixed_bits)
            .saturating_sub(entry_bits * self.min_groups);
        let drop = prune_count(batch.len(), d, self.min_width, prune_budget);
        let batch = if drop > 0 {
            if self.refined {
                *pruned = prune_incremental(batch, drop);
            } else {
                prune_into(batch, drop, prune_scratch, pruned);
            }
            &*pruned
        } else {
            batch
        };
        let k = batch.len();
        #[cfg(feature = "telemetry")]
        if let Some(sw) = stopwatch.as_mut() {
            stage_ns.prune_ns = sw.lap();
        }

        // §4.3: exponent-aware groups, merged down to at most G.
        measurement_exponents_into(batch, cfg.format().integer_bits(), exponents);
        form_groups_into(exponents, groups);
        #[cfg(feature = "telemetry")]
        let groups_initial = groups.len();
        #[cfg(feature = "telemetry")]
        if let Some(sw) = stopwatch.as_mut() {
            stage_ns.group_ns = sw.lap();
        }
        let max_groups = select_max_groups(
            target_bits.saturating_sub(fixed_bits),
            k * d * usize::from(w0),
            entry_bits,
            self.min_groups,
        )
        .min(MAX_GROUPS);
        if self.refined {
            *groups = merge_groups_rescoring(std::mem::take(groups), max_groups);
        } else {
            merge_groups_in_place(groups, max_groups, merge);
        }
        // §4.3's utilization expansion: split homogeneous runs when a
        // directory entry buys back more padding than it costs.
        if self.split_groups {
            optimize_partition_in_place(
                groups,
                d,
                w0,
                target_bits.saturating_sub(fixed_bits),
                entry_bits,
                max_groups,
                split_log,
                trial_widths,
            );
        }
        #[cfg(feature = "telemetry")]
        if let Some(sw) = stopwatch.as_mut() {
            stage_ns.merge_ns = sw.lap();
        }

        // §4.4: per-group widths under the remaining budget.
        let data_budget = target_bits
            .saturating_sub(fixed_bits)
            .saturating_sub(entry_bits * groups.len());
        assign_widths_into(groups, d, w0, data_budget, widths);
        #[cfg(feature = "telemetry")]
        if let Some(sw) = stopwatch.as_mut() {
            stage_ns.quantize_ns = sw.lap();
        }

        // Assemble the message, cycling `out`'s allocation through the
        // writer (the reserve doubles as the capacity hint for cold buffers).
        out.clear();
        out.reserve(self.target_bytes);
        let mut w = BitWriter::from_vec(std::mem::take(out));
        w.write_u16(k as u16);
        // Bitmask as whole words: set bits scattered into up-to-64-step
        // chunks, one writer call per chunk instead of one per time step.
        // MSB-first, so time step `t` of a chunk lands `t` bits below the
        // chunk's top bit — the same bit sequence the per-index loop wrote.
        let mut indices = batch.indices().iter().peekable();
        let mut t = 0usize;
        while t < cfg.max_len() {
            let chunk = (cfg.max_len() - t).min(64);
            let mut word = 0u64;
            while let Some(&&idx) = indices.peek() {
                if idx >= t + chunk {
                    break;
                }
                word |= 1u64 << (chunk - 1 - (idx - t));
                indices.next();
            }
            w.write_bits(word, chunk as u8);
            t += chunk;
        }
        w.write_u8(groups.len() as u8);
        for (g, &width) in groups.iter().zip(widths.iter()) {
            w.write_bits(g.count as u64, cfg.count_bits());
            w.write_bits(u64::from(g.exponent), EXP_BITS);
            w.write_bits(u64::from(width), WIDTH_BITS);
        }
        // A group's measurements are consecutive, so its values form one
        // contiguous row-major slice: quantize the whole lane, then pack it.
        let mut t = 0usize;
        for (g, &width) in groups.iter().zip(widths.iter()) {
            if width == 0 {
                t += g.count;
                continue;
            }
            let fmt = Format::new(width, i16::from(width) - i16::from(g.exponent))
                .expect("group widths and exponents always form a valid format");
            fmt.quantize_bits_slice(&batch.values()[t * d..(t + g.count) * d], quant_bits);
            w.write_fields(quant_bits, width);
            t += g.count;
        }
        debug_assert_eq!(t, k);
        w.pad_to_bytes(self.target_bytes);
        *out = w.into_bytes();
        debug_assert_eq!(out.len(), self.target_bytes);
        #[cfg(feature = "telemetry")]
        {
            if let Some(sw) = stopwatch.as_mut() {
                stage_ns.pack_ns = sw.lap();
            }
            crate::telemetry::count_encode(input_len, k, out.len(), stage_ns.total_ns());
            if stopwatch.is_some() {
                let directory_bits = entry_bits * groups.len();
                let data_bits: usize = groups
                    .iter()
                    .zip(widths.iter())
                    .map(|(g, &width)| g.count * d * usize::from(width))
                    .sum();
                crate::telemetry::emit_record(age_telemetry::BatchRecord {
                    encoder: "AGE",
                    input_len,
                    kept_len: k,
                    groups_initial,
                    groups_final: groups.len(),
                    groups: groups
                        .iter()
                        .zip(widths.iter())
                        .map(|(g, &width)| age_telemetry::GroupRecord {
                            count: g.count,
                            exponent: i32::from(g.exponent),
                            width,
                        })
                        .collect(),
                    header_bits: fixed_bits,
                    directory_bits,
                    data_bits,
                    message_len: out.len(),
                    target_bytes: Some(self.target_bytes),
                    timings: stage_ns,
                    ..Default::default()
                });
            }
        }
        Ok(())
    }

    fn decode(&self, message: &[u8], cfg: &BatchConfig) -> Result<Batch, DecodeError> {
        let mut scratch = EncodeScratch::new();
        let mut out = Batch::empty();
        self.decode_into(message, cfg, &mut scratch, &mut out)?;
        Ok(out)
    }

    fn decode_into(
        &self,
        message: &[u8],
        cfg: &BatchConfig,
        scratch: &mut EncodeScratch,
        out: &mut Batch,
    ) -> Result<(), DecodeError> {
        if message.len() != self.target_bytes {
            return Err(DecodeError::Length {
                len: message.len(),
                expected: self.target_bytes,
            });
        }
        let d = cfg.features();
        let groups = &mut scratch.groups;
        let widths = &mut scratch.widths;
        let lane = &mut scratch.quant_bits;
        out.clear();
        let (indices, values) = out.parts_mut();
        let mut r = BitReader::new(message);
        let k = usize::from(r.read_u16()?);
        if k > cfg.max_len() {
            return Err(DecodeError::Corrupt(
                "measurement count exceeds batch maximum",
            ));
        }
        // Bitmask: scan up to 64 time steps per read instead of one.
        indices.reserve(k);
        let mut t = 0usize;
        while t < cfg.max_len() {
            let chunk = (cfg.max_len() - t).min(64) as u8;
            let mut bits = r.read_bits(chunk)?;
            // Consume set bits high-to-low; indices come out increasing.
            bits <<= 64 - u32::from(chunk);
            while bits != 0 {
                let lead = bits.leading_zeros();
                indices.push(t + lead as usize);
                bits &= !(1u64 << 63 >> lead);
            }
            t += usize::from(chunk);
        }
        if indices.len() != k {
            return Err(DecodeError::Corrupt(
                "bitmask population differs from header count",
            ));
        }
        let num_groups = usize::from(r.read_u8()?);
        groups.clear();
        widths.clear();
        let mut total = 0usize;
        for _ in 0..num_groups {
            let count = r.read_bits(cfg.count_bits())? as usize;
            let exponent = r.read_bits(EXP_BITS)? as u8;
            let width = r.read_bits(WIDTH_BITS)? as u8;
            if exponent == 0 {
                return Err(DecodeError::Corrupt("group exponent of zero"));
            }
            if width > Format::MAX_WIDTH {
                return Err(DecodeError::Corrupt("group width exceeds format maximum"));
            }
            total += count;
            groups.push(Group { count, exponent });
            widths.push(width);
        }
        if total != k {
            return Err(DecodeError::Corrupt(
                "group counts disagree with measurement count",
            ));
        }
        values.reserve(k * d);
        for (g, &width) in groups.iter().zip(widths.iter()) {
            if width == 0 {
                values.extend(std::iter::repeat_n(0.0, g.count * d));
                continue;
            }
            let fmt = Format::new(width, i16::from(width) - i16::from(g.exponent))
                .map_err(|_| DecodeError::Corrupt("group width/exponent pair is invalid"))?;
            lane.clear();
            lane.reserve(g.count * d);
            for _ in 0..g.count * d {
                lane.push(r.read_bits(width)?);
            }
            fmt.dequantize_bits_slice(lane, values);
        }
        // By construction the indices are strictly increasing and the value
        // count is `k·d`; mirror the `Batch::new` consistency check anyway so
        // a logic regression surfaces as a decode error, not a bad batch.
        if indices.is_empty() != values.is_empty()
            || (!indices.is_empty() && !values.len().is_multiple_of(indices.len()))
        {
            return Err(DecodeError::Corrupt("decoded batch failed validation"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::assign_widths;
    use crate::Encoder;

    fn cfg() -> BatchConfig {
        BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap()
    }

    fn ramp_batch(k: usize, d: usize) -> Batch {
        let indices: Vec<usize> = (0..k).collect();
        let values: Vec<f64> = (0..k * d).map(|i| (i as f64 * 0.01) % 3.0 - 1.5).collect();
        Batch::new(indices, values).unwrap()
    }

    #[test]
    fn messages_are_always_target_sized() {
        let enc = AgeEncoder::new(220);
        let c = cfg();
        for k in [0usize, 1, 5, 25, 50] {
            let batch = ramp_batch(k, 6);
            let msg = enc.encode(&batch, &c).unwrap();
            assert_eq!(msg.len(), 220, "k={k}");
        }
    }

    #[test]
    fn roundtrip_preserves_indices_exactly() {
        let enc = AgeEncoder::new(220);
        let c = cfg();
        let batch = Batch::new(vec![0, 3, 17, 42, 49], vec![0.5; 30]).unwrap();
        let out = enc.decode(&enc.encode(&batch, &c).unwrap(), &c).unwrap();
        assert_eq!(out.indices(), batch.indices());
    }

    #[test]
    fn roundtrip_error_is_small_under_generous_budget() {
        let enc = AgeEncoder::new(400);
        let c = cfg();
        let batch = ramp_batch(30, 6);
        let out = enc.decode(&enc.encode(&batch, &c).unwrap(), &c).unwrap();
        for (a, b) in batch.values().iter().zip(out.values()) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn full_width_roundtrip_is_exact_for_representable_values() {
        // Under-sampling: few measurements, generous budget => full width.
        let enc = AgeEncoder::new(220);
        let c = cfg();
        let fmt = c.format();
        let values: Vec<f64> = (0..18)
            .map(|i| fmt.round_trip(i as f64 * 0.17 - 1.0))
            .collect();
        let batch = Batch::new((0..3).map(|i| i * 10).collect(), values.clone()).unwrap();
        let out = enc.decode(&enc.encode(&batch, &c).unwrap(), &c).unwrap();
        for (a, b) in values.iter().zip(out.values()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn extreme_oversampling_prunes_instead_of_dropping_all() {
        // Target that cannot hold 50×6 values even at 1 bit each: AGE should
        // keep a pruned subset, not return an empty batch.
        let c = cfg();
        let enc = AgeEncoder::new(35);
        let batch = ramp_batch(50, 6);
        let out = enc.decode(&enc.encode(&batch, &c).unwrap(), &c).unwrap();
        assert!(!out.is_empty());
        assert!(out.len() < 50);
        // Every survivor got at least MIN_WIDTH bits, so error is bounded.
        assert_eq!(enc.encode(&batch, &c).unwrap().len(), 35);
    }

    #[test]
    fn dynamic_range_beats_static_exponent() {
        // Values needing n=1 get quantized much better than a static n0=3
        // would allow at small widths.
        let c = cfg();
        let enc = AgeEncoder::new(60);
        let k = 30;
        let values: Vec<f64> = (0..k * 6).map(|i| 0.1 + 0.001 * (i as f64)).collect();
        let batch = Batch::new((0..k).collect(), values.clone()).unwrap();
        let out = enc.decode(&enc.encode(&batch, &c).unwrap(), &c).unwrap();
        let mae: f64 = out
            .values()
            .iter()
            .zip(&values)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / values.len() as f64;
        assert!(mae < 0.05, "mae={mae}");
    }

    #[test]
    fn rejects_invalid_batches() {
        let c = cfg();
        let enc = AgeEncoder::new(220);
        let too_big = Batch::new((0..51).collect(), vec![0.0; 51 * 6]).unwrap();
        assert!(matches!(
            enc.encode(&too_big, &BatchConfig::new(50, 6, c.format()).unwrap()),
            Err(EncodeError::BatchTooLarge { .. })
        ));
        let out_of_range = Batch::new(vec![50], vec![0.0; 6]).unwrap();
        assert!(matches!(
            enc.encode(&out_of_range, &c),
            Err(EncodeError::IndexOutOfRange { .. })
        ));
        let wrong_d = Batch::new(vec![0], vec![0.0; 3]).unwrap();
        assert!(matches!(
            enc.encode(&wrong_d, &c),
            Err(EncodeError::FeatureMismatch { .. })
        ));
        let tiny = AgeEncoder::new(2);
        assert!(matches!(
            tiny.encode(&Batch::empty(), &c),
            Err(EncodeError::TargetTooSmall { .. })
        ));
    }

    #[test]
    fn decode_rejects_corrupt_messages() {
        let c = cfg();
        let enc = AgeEncoder::new(220);
        let msg = enc.encode(&ramp_batch(10, 6), &c).unwrap();
        // Claim more measurements than the bitmask carries.
        let mut bad = msg.clone();
        bad[0] = 0xFF;
        bad[1] = 0xFF;
        assert!(enc.decode(&bad, &c).is_err());
        // Truncated and oversized messages are rejected by the exact-length
        // check before any bit-level parsing.
        assert_eq!(
            enc.decode(&msg[..4], &c),
            Err(DecodeError::Length {
                len: 4,
                expected: 220
            })
        );
        let mut long = msg.clone();
        long.push(0);
        assert_eq!(
            enc.decode(&long, &c),
            Err(DecodeError::Length {
                len: 221,
                expected: 220
            })
        );
    }

    #[test]
    fn empty_batch_roundtrips() {
        let c = cfg();
        let enc = AgeEncoder::new(220);
        let msg = enc.encode(&Batch::empty(), &c).unwrap();
        assert_eq!(msg.len(), 220);
        let out = enc.decode(&msg, &c).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn width_assignment_mimics_fractional_bits() {
        // Paper §4.4 example: M_B=220, k=50, d=6 with 5 groups of 10 should
        // give one group 5 bits and four groups 6 bits (218 data bytes).
        let groups = vec![
            Group {
                count: 10,
                exponent: 3
            };
            5
        ];
        let widths = assign_widths(&groups, 6, 16, 220 * 8 - 16 - 50 - 8 - 5 * 18);
        let total_bits: usize = groups
            .iter()
            .zip(&widths)
            .map(|(g, &w)| g.count * 6 * usize::from(w))
            .sum();
        assert!(total_bits <= 220 * 8);
        // Better utilization than the uniform width of 5 bits (1500 bits).
        assert!(
            total_bits > 1500,
            "round robin should exceed uniform packing"
        );
        let max = *widths.iter().max().unwrap();
        let min = *widths.iter().min().unwrap();
        assert!(max - min <= 1, "round robin keeps widths within one bit");
    }

    #[test]
    #[ignore]
    fn profile_stages() {
        use crate::group::{
            form_groups_into, measurement_exponents_into, merge_groups_in_place,
            optimize_partition_in_place, select_max_groups, MergeScratch,
        };
        use std::time::Instant;
        let c = cfg();
        let d = c.features();
        let k = c.max_len();
        let batch = Batch::new(
            (0..k).collect(),
            (0..k * d)
                .map(|i| {
                    let x = i as f64;
                    (x * 0.17).sin() * (1.0 + (i % 7) as f64) - 2.5
                })
                .collect(),
        )
        .unwrap();
        let enc = AgeEncoder::new(220);
        let mut scratch = EncodeScratch::new();
        let mut out = Vec::new();
        let time = |label: &str, mut f: Box<dyn FnMut() + '_>| {
            for _ in 0..1000 {
                f();
            }
            let iters = 200_000u32;
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
            println!("{label}: {ns:.0} ns");
        };
        time(
            "full encode",
            Box::new(|| {
                enc.encode_into(&batch, &c, &mut scratch, &mut out).unwrap();
                std::hint::black_box(out.len());
            }),
        );
        let mut exps = Vec::new();
        time(
            "exponents",
            Box::new(|| {
                measurement_exponents_into(&batch, c.format().integer_bits(), &mut exps);
                std::hint::black_box(exps.len());
            }),
        );
        let mut groups = Vec::new();
        time(
            "form_groups",
            Box::new(|| {
                form_groups_into(&exps, &mut groups);
                std::hint::black_box(groups.len());
            }),
        );
        let target_bits = 220usize * 8;
        let fixed_bits = AgeEncoder::fixed_bits(&c);
        let entry_bits = AgeEncoder::entry_bits(&c);
        let max_groups = select_max_groups(
            target_bits - fixed_bits,
            k * d * 16,
            entry_bits,
            AgeEncoder::MIN_GROUPS,
        )
        .min(MAX_GROUPS);
        let mut merge = MergeScratch::default();
        let mut merged = Vec::new();
        time(
            "merge",
            Box::new(|| {
                merged.clear();
                merged.extend_from_slice(&groups);
                merge_groups_in_place(&mut merged, max_groups, &mut merge);
                std::hint::black_box(merged.len());
            }),
        );
        let base = merged.clone();
        let mut split_log = Vec::new();
        let mut trial = Vec::new();
        let mut part = Vec::new();
        time(
            "optimize_partition",
            Box::new(|| {
                part.clear();
                part.extend_from_slice(&base);
                optimize_partition_in_place(
                    &mut part,
                    d,
                    16,
                    target_bits - fixed_bits,
                    entry_bits,
                    max_groups,
                    &mut split_log,
                    &mut trial,
                );
                std::hint::black_box(part.len());
            }),
        );
        let mut widths = Vec::new();
        time(
            "assign_widths",
            Box::new(|| {
                assign_widths_into(
                    &part,
                    d,
                    16,
                    target_bits - fixed_bits - entry_bits * part.len(),
                    &mut widths,
                );
                std::hint::black_box(widths.len());
            }),
        );
    }

    #[test]
    fn min_target_accounts_for_framing() {
        let c = cfg();
        // 16 (k) + 50 (bitmask) + 8 (count) + 18 (one entry) bits = 12 bytes.
        assert_eq!(AgeEncoder::min_target_bytes(&c), 12);
    }
}
