//! Batches of collected measurements and their static configuration.

use age_fixed::Format;

use crate::error::BatchError;

/// Static description of a sensor's batching setup (the paper's §4.1
/// notation): at most `T` measurements per batch, `d` features each, stored
/// in the fixed-point [`Format`] `(w0, n0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    max_len: usize,
    features: usize,
    format: Format,
}

/// Error constructing a [`BatchConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError(&'static str);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid batch configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl BatchConfig {
    /// Creates a configuration for batches of up to `max_len` measurements
    /// (`T`), each with `features` values (`d`) in `format` (`w0`/`n0`).
    ///
    /// # Errors
    ///
    /// Returns an error if `max_len` is zero or above `u16::MAX` (the header
    /// stores `k` in 16 bits) or `features` is zero.
    pub fn new(max_len: usize, features: usize, format: Format) -> Result<Self, ConfigError> {
        if max_len == 0 {
            return Err(ConfigError("max_len must be positive"));
        }
        if max_len > usize::from(u16::MAX) {
            return Err(ConfigError("max_len must fit in 16 bits"));
        }
        if features == 0 {
            return Err(ConfigError("features must be positive"));
        }
        Ok(BatchConfig {
            max_len,
            features,
            format,
        })
    }

    /// Maximum measurements per batch (the paper's `T`).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Features per measurement (the paper's `d`).
    pub fn features(&self) -> usize {
        self.features
    }

    /// The original fixed-point format (`w0` bits, `n0` non-fractional).
    pub fn format(&self) -> Format {
        self.format
    }

    /// Bits needed to store a measurement index (`ceil(log2(T))`, min 1).
    pub fn index_bits(&self) -> u8 {
        bits_for(self.max_len.saturating_sub(1) as u64)
    }

    /// Bits needed to store a per-group measurement count (`0..=T`).
    pub fn count_bits(&self) -> u8 {
        bits_for(self.max_len as u64)
    }

    /// Bytes of the collected-index bitmask (`ceil(T / 8)`).
    pub fn bitmask_bytes(&self) -> usize {
        self.max_len.div_ceil(8)
    }

    /// Size in bytes of a standard (unencoded) message for `k` collected
    /// measurements: a 16-bit count plus, per measurement, an index and `d`
    /// full-width values.
    pub fn standard_message_bytes(&self, k: usize) -> usize {
        let bits = 16
            + k * (usize::from(self.index_bits())
                + self.features * usize::from(self.format.width()));
        bits.div_ceil(8)
    }
}

/// Bits required to represent `value` (min 1).
fn bits_for(value: u64) -> u8 {
    let bits = 64 - value.leading_zeros();
    bits.max(1) as u8
}

/// A batch of collected measurements: strictly increasing original indices
/// `α_t` and a row-major value buffer of `k · d` entries.
///
/// # Examples
///
/// ```
/// use age_core::Batch;
///
/// // Two 3-feature measurements collected at steps 4 and 9.
/// let batch = Batch::new(vec![4, 9], vec![0.1, 0.2, 0.3, 1.1, 1.2, 1.3])?;
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.measurement(1), &[1.1, 1.2, 1.3]);
/// # Ok::<(), age_core::BatchError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Batch {
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Batch {
    /// Creates a batch from collected indices and a row-major value buffer.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::UnsortedIndices`] if `indices` is not strictly
    /// increasing, or [`BatchError::LengthMismatch`] if `values.len()` is not
    /// a positive multiple of `indices.len()` (unless both are empty).
    pub fn new(indices: Vec<usize>, values: Vec<f64>) -> Result<Self, BatchError> {
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BatchError::UnsortedIndices);
        }
        if indices.is_empty() {
            if values.is_empty() {
                return Ok(Batch { indices, values });
            }
            return Err(BatchError::LengthMismatch {
                indices: 0,
                values: values.len(),
            });
        }
        if !values.len().is_multiple_of(indices.len()) || values.is_empty() {
            return Err(BatchError::LengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        Ok(Batch { indices, values })
    }

    /// An empty batch (the policy collected nothing).
    pub fn empty() -> Self {
        Batch {
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of collected measurements (the paper's `k`).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` if no measurements were collected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Features per measurement, or 0 for an empty batch.
    pub fn features(&self) -> usize {
        if self.indices.is_empty() {
            0
        } else {
            self.values.len() / self.indices.len()
        }
    }

    /// The collected original indices `α_0 < α_1 < …`.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The row-major value buffer (`k · d` entries).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The `t`-th collected measurement as a feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`.
    pub fn measurement(&self, t: usize) -> &[f64] {
        let d = self.features();
        &self.values[t * d..(t + 1) * d]
    }

    /// Mutable access to the raw index/value buffers, for in-crate decoders
    /// that rebuild a batch in place without allocating. Callers must uphold
    /// the [`Batch::new`] invariants: strictly increasing indices and a value
    /// count that is a multiple of the index count.
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<usize>, &mut Vec<f64>) {
        (&mut self.indices, &mut self.values)
    }

    /// Removes all measurements, keeping the buffers' allocations.
    pub(crate) fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Copies `src` into `self`, reusing this batch's buffer allocations
    /// (the derived `Clone::clone_from` would clone-and-replace instead).
    pub(crate) fn copy_from(&mut self, src: &Batch) {
        self.indices.clone_from(&src.indices);
        self.values.clone_from(&src.values);
    }

    /// Returns a copy with only the measurements at `keep` positions
    /// (positions into this batch, not original indices), preserving order.
    pub(crate) fn retain_positions(&self, keep: &[bool]) -> Batch {
        let mut out = Batch::empty();
        self.retain_positions_into(keep, &mut out);
        out
    }

    /// Allocation-reusing form of [`Batch::retain_positions`]: clears `out`
    /// and fills it with the kept measurements, reusing its buffers.
    pub(crate) fn retain_positions_into(&self, keep: &[bool], out: &mut Batch) {
        debug_assert_eq!(keep.len(), self.len());
        out.clear();
        for (t, &flag) in keep.iter().enumerate() {
            if flag {
                out.indices.push(self.indices[t]);
                out.values.extend_from_slice(self.measurement(t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt16() -> Format {
        Format::new(16, 13).unwrap()
    }

    #[test]
    fn config_validates_bounds() {
        assert!(BatchConfig::new(0, 1, fmt16()).is_err());
        assert!(BatchConfig::new(70000, 1, fmt16()).is_err());
        assert!(BatchConfig::new(50, 0, fmt16()).is_err());
        assert!(BatchConfig::new(50, 6, fmt16()).is_ok());
    }

    #[test]
    fn index_and_count_bits() {
        let cfg = BatchConfig::new(50, 6, fmt16()).unwrap();
        assert_eq!(cfg.index_bits(), 6); // indices 0..=49
        assert_eq!(cfg.count_bits(), 6); // counts 0..=50
        let cfg = BatchConfig::new(1250, 1, fmt16()).unwrap();
        assert_eq!(cfg.index_bits(), 11);
        assert_eq!(cfg.count_bits(), 11);
        let cfg = BatchConfig::new(1, 1, fmt16()).unwrap();
        assert_eq!(cfg.index_bits(), 1);
        assert_eq!(cfg.bitmask_bytes(), 1);
    }

    #[test]
    fn standard_message_size_matches_paper_scale() {
        // Activity: T=50, d=6, w0=16. A full batch is ~600 data bytes.
        let cfg = BatchConfig::new(50, 6, fmt16()).unwrap();
        let full = cfg.standard_message_bytes(50);
        assert!(full > 600 && full < 650, "full batch is {full} bytes");
        assert!(cfg.standard_message_bytes(10) < cfg.standard_message_bytes(20));
    }

    #[test]
    fn batch_construction_validates() {
        assert!(Batch::new(vec![3, 3], vec![0.0, 0.0]).is_err());
        assert!(Batch::new(vec![5, 2], vec![0.0, 0.0]).is_err());
        assert!(Batch::new(vec![1, 2], vec![0.0, 0.0, 0.0]).is_err());
        assert!(Batch::new(vec![], vec![1.0]).is_err());
        assert!(Batch::new(vec![], vec![]).is_ok());
        let b = Batch::new(vec![1, 2], vec![0.0; 6]).unwrap();
        assert_eq!(b.features(), 3);
    }

    #[test]
    fn retain_positions_filters_rows() {
        let b = Batch::new(vec![0, 3, 7], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let kept = b.retain_positions(&[true, false, true]);
        assert_eq!(kept.indices(), &[0, 7]);
        assert_eq!(kept.values(), &[1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn empty_batch_accessors() {
        let b = Batch::empty();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.features(), 0);
    }
}
