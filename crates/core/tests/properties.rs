//! Randomized property tests for the AGE encoder and its variants, driven
//! by the workspace's deterministic PRNG (no external test deps).
//!
//! The central security property: for a fixed configuration and target, the
//! message length is a constant — independent of how many measurements the
//! adaptive policy collected and of the values themselves. A single
//! counterexample would reopen the side-channel.

use age_core::{
    inspect_message, AgeEncoder, Batch, BatchConfig, Encoder, PaddedEncoder, PrunedEncoder,
    SingleEncoder, StandardEncoder, UnshiftedEncoder,
};
use age_fixed::Format;
use age_telemetry::{DetRng, SliceShuffle};

const CASES: usize = 128;

/// A random batch configuration plus a consistent batch.
fn config_and_batch(rng: &mut DetRng) -> (BatchConfig, Batch) {
    let max_len = rng.gen_range(2usize..200);
    let features = rng.gen_range(1usize..8);
    let width = rng.gen_range(4u32..=24) as u8;
    let n = rng.gen_range(0i64..20) as i16;
    let n = (n % i16::from(width)).max(1);
    let fmt = Format::from_integer_bits(width, n as u8).expect("valid by construction");
    let cfg = BatchConfig::new(max_len, features, fmt).expect("valid by construction");
    let k = rng.gen_range(0usize..=max_len);
    let lo = cfg.format().min_value();
    let hi = cfg.format().max_value();
    let values: Vec<f64> = (0..k * cfg.features())
        .map(|_| rng.gen_range(lo..hi))
        .collect();
    let mut all: Vec<usize> = (0..cfg.max_len()).collect();
    all.shuffle(rng);
    all.truncate(k);
    all.sort_unstable();
    let batch = Batch::new(all, values).expect("generator builds valid batches");
    (cfg, batch)
}

/// THE security property: every batch encodes to exactly the target.
#[test]
fn age_messages_are_always_target_sized() {
    let mut rng = DetRng::seed_from_u64(0xA6E1);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let extra = rng.gen_range(0usize..300);
        let target = AgeEncoder::min_target_bytes(&cfg) + extra;
        let enc = AgeEncoder::new(target);
        let msg = enc.encode(&batch, &cfg).unwrap();
        assert_eq!(msg.len(), target);
    }
}

/// Decoding an AGE message always succeeds and yields a subset of the
/// collected indices, in order.
#[test]
fn age_decodes_to_an_ordered_index_subset() {
    let mut rng = DetRng::seed_from_u64(0xA6E2);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let extra = rng.gen_range(0usize..300);
        let target = AgeEncoder::min_target_bytes(&cfg) + extra;
        let enc = AgeEncoder::new(target);
        let out = enc
            .decode(&enc.encode(&batch, &cfg).unwrap(), &cfg)
            .unwrap();
        assert!(out.len() <= batch.len());
        assert!(out.indices().windows(2).all(|w| w[0] < w[1]));
        let mut iter = batch.indices().iter();
        for idx in out.indices() {
            assert!(iter.any(|i| i == idx), "decoded index {idx} not collected");
        }
    }
}

/// Per-value error of surviving measurements is bounded by the half-step
/// of the *narrowest* width AGE may assign (given its pruning floor) —
/// as long as the target gives every value at least MIN_WIDTH bits plus
/// framing, i.e. whenever pruning is a no-op.
#[test]
fn age_error_bounded_when_pruning_is_inactive() {
    let mut rng = DetRng::seed_from_u64(0xA6E3);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        // A target generous enough that pruning never fires and the base
        // width is at least MIN_WIDTH.
        let generous = AgeEncoder::min_target_bytes(&cfg)
            + 300  // room for the full group directory
            + batch.len() * cfg.features() * usize::from(cfg.format().width()).div_ceil(8);
        let enc = AgeEncoder::new(generous);
        let out = enc
            .decode(&enc.encode(&batch, &cfg).unwrap(), &cfg)
            .unwrap();
        assert_eq!(out.len(), batch.len(), "no pruning under a generous budget");
        // Worst case: min(MIN_WIDTH, w0) bits (assigned widths never exceed
        // the original width) with a merged exponent of at most the format's
        // n0, so the step is at most 2^(n0 - min(MIN_WIDTH, w0)).
        let n0 = i32::from(cfg.format().integer_bits());
        let worst_width = AgeEncoder::MIN_WIDTH.min(cfg.format().width());
        let worst_step = f64::powi(2.0, n0 - i32::from(worst_width));
        for (a, b) in batch.values().iter().zip(out.values()) {
            assert!(
                (a - b).abs() <= worst_step / 2.0 + 1e-9,
                "value {} decoded {} exceeds bound {}",
                a,
                b,
                worst_step / 2.0
            );
        }
    }
}

/// The round-trip error bound, per group: every decoded value sits within
/// half the quantization step its own group's directory entry declares —
/// for any target, pruning active or not. This is tighter than the
/// worst-case bound above: each group's `(exponent, width)` pair defines
/// the step that bounds exactly the measurements in that group.
#[test]
fn decoded_values_respect_per_group_quantization_error() {
    let mut rng = DetRng::seed_from_u64(0xA6EA);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let extra = rng.gen_range(0usize..300);
        let target = AgeEncoder::min_target_bytes(&cfg) + extra;
        let enc = AgeEncoder::new(target);
        let msg = enc.encode(&batch, &cfg).unwrap();
        let out = enc.decode(&msg, &cfg).unwrap();
        let layout = inspect_message(&msg, &cfg).unwrap();
        assert_eq!(layout.measurements, out.len());
        // Walk the decoded measurements group by group, in wire order.
        let mut t = 0;
        for group in &layout.groups {
            let step = f64::powi(2.0, i32::from(group.exponent) - i32::from(group.width));
            for _ in 0..group.count {
                let index = out.indices()[t];
                let original = batch
                    .indices()
                    .iter()
                    .position(|&i| i == index)
                    .expect("decoded indices are a subset of the collected ones");
                // The group's signed range tops out at 2^(n-1) - step; a
                // value in the clamp gap just below 2^(n-1) saturates and
                // loses up to a full step instead of half.
                let max_repr = f64::powi(2.0, i32::from(group.exponent) - 1) - step;
                for f in 0..cfg.features() {
                    let a = batch.values()[original * cfg.features() + f];
                    let b = out.values()[t * cfg.features() + f];
                    let bound = if a > max_repr { step } else { step / 2.0 };
                    assert!(
                        (a - b).abs() <= bound + 1e-9,
                        "index {index}: {a} decoded as {b}, outside ±{bound} \
                         (group n={} w={})",
                        group.exponent,
                        group.width
                    );
                }
                t += 1;
            }
        }
        assert_eq!(t, out.len(), "groups must cover every decoded measurement");
    }
}

/// The fixed-length property survives sealing: the transport frame around
/// an AGE message has one constant on-air size, whatever the batch held.
#[test]
fn sealed_transport_frames_have_constant_size() {
    use age_crypto::ChaCha20Poly1305;
    use age_transport::Sensor;

    let mut rng = DetRng::seed_from_u64(0xA6EB);
    let cfg = BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap();
    let enc = AgeEncoder::new(220);
    let mut sensor = Sensor::new(Box::new(ChaCha20Poly1305::new([7u8; 32])));
    let mut frame_sizes = std::collections::HashSet::new();
    for _ in 0..64 {
        let k = rng.gen_range(0usize..=cfg.max_len());
        let lo = cfg.format().min_value();
        let hi = cfg.format().max_value();
        let values: Vec<f64> = (0..k * cfg.features())
            .map(|_| rng.gen_range(lo..hi))
            .collect();
        let mut all: Vec<usize> = (0..cfg.max_len()).collect();
        all.shuffle(&mut rng);
        all.truncate(k);
        all.sort_unstable();
        let batch = Batch::new(all, values).unwrap();
        let msg = enc.encode(&batch, &cfg).unwrap();
        let (_, frame) = sensor.seal(&msg);
        assert_eq!(frame.len(), sensor.frame_len(msg.len()));
        frame_sizes.insert(frame.len());
    }
    assert_eq!(
        frame_sizes.len(),
        1,
        "sealed AGE frames must share one size: {frame_sizes:?}"
    );
}

/// Variants share the fixed-length property.
#[test]
fn variants_are_fixed_length() {
    let mut rng = DetRng::seed_from_u64(0xA6E4);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let extra = rng.gen_range(8usize..300);
        let base = AgeEncoder::min_target_bytes(&cfg).max((16 + cfg.max_len() + 6 * 6).div_ceil(8));
        let target = base + extra;
        for enc in [
            Box::new(SingleEncoder::new(target)) as Box<dyn Encoder>,
            Box::new(UnshiftedEncoder::new(target)),
            Box::new(PrunedEncoder::new(target)),
        ] {
            let msg = enc.encode(&batch, &cfg).unwrap();
            assert_eq!(msg.len(), target, "{}", enc.name());
            // And they all decode without error.
            enc.decode(&msg, &cfg).unwrap();
        }
    }
}

/// The standard encoder's size is a strictly increasing function of k —
/// this is exactly the leak AGE closes.
#[test]
fn standard_size_leaks_k() {
    let mut rng = DetRng::seed_from_u64(0xA6E5);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let enc = StandardEncoder;
        let msg = enc.encode(&batch, &cfg).unwrap();
        assert_eq!(msg.len(), cfg.standard_message_bytes(batch.len()));
        let out = enc.decode(&msg, &cfg).unwrap();
        assert_eq!(out.indices(), batch.indices());
    }
}

/// Standard decoding is lossless for format-representable values.
#[test]
fn standard_roundtrip_is_lossless() {
    let mut rng = DetRng::seed_from_u64(0xA6E6);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let fmt = cfg.format();
        let snapped: Vec<f64> = batch.values().iter().map(|&x| fmt.round_trip(x)).collect();
        let b = Batch::new(batch.indices().to_vec(), snapped.clone()).unwrap();
        let enc = StandardEncoder;
        let out = enc.decode(&enc.encode(&b, &cfg).unwrap(), &cfg).unwrap();
        for (a, b) in snapped.iter().zip(out.values()) {
            assert_eq!(a, b);
        }
    }
}

/// Padded messages are constant-length and lossless.
#[test]
fn padded_is_fixed_and_lossless() {
    let mut rng = DetRng::seed_from_u64(0xA6E7);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let enc = PaddedEncoder::for_config(&cfg);
        let msg = enc.encode(&batch, &cfg).unwrap();
        assert_eq!(msg.len(), cfg.standard_message_bytes(cfg.max_len()));
        let out = enc.decode(&msg, &cfg).unwrap();
        assert_eq!(out.indices(), batch.indices());
    }
}

/// The integer-only MCU encode path is bit-identical to the
/// floating-point encoder on format-exact inputs.
#[test]
fn mcu_integer_path_matches_float_path() {
    use age_core::mcu::{encode_raw, RawBatch};
    let mut rng = DetRng::seed_from_u64(0xA6E8);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let extra = rng.gen_range(0usize..300);
        let fmt = cfg.format();
        // Snap values to the format (the ADC would deliver exactly these).
        let snapped: Vec<f64> = batch.values().iter().map(|&x| fmt.round_trip(x)).collect();
        let fb = Batch::new(batch.indices().to_vec(), snapped).unwrap();
        let rb = RawBatch::from_batch(&fb, &cfg);
        let target = AgeEncoder::min_target_bytes(&cfg) + extra;
        let enc = AgeEncoder::new(target);
        let float_msg = enc.encode(&fb, &cfg).unwrap();
        let int_msg = encode_raw(&enc, &rb, &cfg).unwrap();
        assert_eq!(float_msg, int_msg);
    }
}

/// Decoding never panics on arbitrary bytes (errors are fine).
#[test]
fn age_decode_is_panic_free_on_garbage() {
    let mut rng = DetRng::seed_from_u64(0xA6E9);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..400);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let cfg = BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap();
        let _ = AgeEncoder::new(220).decode(&bytes, &cfg);
        let _ = StandardEncoder.decode(&bytes, &cfg);
        let _ = SingleEncoder::new(220).decode(&bytes, &cfg);
        let _ = UnshiftedEncoder::new(220).decode(&bytes, &cfg);
        let _ = PrunedEncoder::new(220).decode(&bytes, &cfg);
    }
}
