//! Deterministic decoder fuzz smoke test: byte-level mutations of *valid*
//! messages across every encoder. The receiver-side contract is that
//! `decode` either returns an error or a structurally valid batch — it never
//! panics and never fabricates out-of-range indices, whatever a faulty link
//! does to the bytes.
//!
//! Mutations are drawn from the workspace's deterministic PRNG with a fixed
//! seed and iteration count, so a failure reproduces exactly.

use age_core::{
    AgeEncoder, Batch, BatchConfig, Encoder, PaddedEncoder, PrunedEncoder, SingleEncoder,
    StandardEncoder, UnshiftedEncoder,
};
use age_fixed::Format;
use age_telemetry::{DetRng, SliceShuffle};

const CASES: usize = 96;
const MUTATIONS_PER_MESSAGE: usize = 12;

/// A random batch configuration plus a consistent batch (mirrors the
/// generator in `properties.rs`).
fn config_and_batch(rng: &mut DetRng) -> (BatchConfig, Batch) {
    let max_len = rng.gen_range(2usize..120);
    let features = rng.gen_range(1usize..6);
    let width = rng.gen_range(4u32..=24) as u8;
    let n = rng.gen_range(0i64..20) as i16;
    let n = (n % i16::from(width)).max(1);
    let fmt = Format::from_integer_bits(width, n as u8).expect("valid by construction");
    let cfg = BatchConfig::new(max_len, features, fmt).expect("valid by construction");
    let k = rng.gen_range(1usize..=max_len);
    let lo = cfg.format().min_value();
    let hi = cfg.format().max_value();
    let values: Vec<f64> = (0..k * cfg.features())
        .map(|_| rng.gen_range(lo..hi))
        .collect();
    let mut all: Vec<usize> = (0..cfg.max_len()).collect();
    all.shuffle(rng);
    all.truncate(k);
    all.sort_unstable();
    let batch = Batch::new(all, values).expect("generator builds valid batches");
    (cfg, batch)
}

/// Applies one random mutation: truncate, extend with noise, or flip bits.
fn mutate(rng: &mut DetRng, message: &[u8]) -> Vec<u8> {
    let mut out = message.to_vec();
    match rng.gen_range(0u32..3) {
        0 => {
            // Truncate to a strictly shorter prefix (possibly empty).
            let keep = rng.gen_range(0usize..out.len().max(1));
            out.truncate(keep);
        }
        1 => {
            // Extend with random trailing bytes.
            let extra = rng.gen_range(1usize..32);
            out.extend((0..extra).map(|_| rng.gen_range(0u32..256) as u8));
        }
        _ => {
            // Flip one to four random bits in place.
            if !out.is_empty() {
                for _ in 0..rng.gen_range(1u32..=4) {
                    let byte = rng.gen_range(0usize..out.len());
                    let bit = rng.gen_range(0u32..8);
                    out[byte] ^= 1 << bit;
                }
            }
        }
    }
    out
}

/// Whatever `decode` accepted must be a structurally valid batch for `cfg`:
/// indices strictly ascending and in range, values shaped `k * features`,
/// every value representable (finite).
fn assert_valid(batch: &Batch, cfg: &BatchConfig, encoder: &str) {
    assert!(
        batch.indices().windows(2).all(|w| w[0] < w[1]),
        "{encoder}: decoded indices not strictly ascending"
    );
    assert!(
        batch.indices().iter().all(|&i| i < cfg.max_len()),
        "{encoder}: decoded index out of range"
    );
    assert_eq!(
        batch.values().len(),
        batch.indices().len() * cfg.features(),
        "{encoder}: value count does not match index count"
    );
    assert!(
        batch.values().iter().all(|v| v.is_finite()),
        "{encoder}: decoded a non-finite value"
    );
}

#[test]
fn mutated_messages_never_panic_the_decoders() {
    let mut rng = DetRng::seed_from_u64(0xF0_22ED);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let extra = rng.gen_range(8usize..200);
        let target = AgeEncoder::min_target_bytes(&cfg)
            .max((16 + cfg.max_len() + 6 * 6).div_ceil(8))
            + extra;
        let encoders: Vec<Box<dyn Encoder>> = vec![
            Box::new(AgeEncoder::new(target)),
            Box::new(StandardEncoder),
            Box::new(PaddedEncoder::for_config(&cfg)),
            Box::new(SingleEncoder::new(target)),
            Box::new(UnshiftedEncoder::new(target)),
            Box::new(PrunedEncoder::new(target)),
        ];
        for enc in &encoders {
            let valid = enc.encode(&batch, &cfg).expect("valid batches encode");
            for _ in 0..MUTATIONS_PER_MESSAGE {
                let mutated = mutate(&mut rng, &valid);
                if let Ok(decoded) = enc.decode(&mutated, &cfg) {
                    assert_valid(&decoded, &cfg, enc.name());
                }
            }
        }
    }
}

#[test]
fn unmutated_messages_still_decode() {
    // Guard against the fuzz passing vacuously because decode rejects
    // everything: the untouched message must round-trip for every encoder.
    let mut rng = DetRng::seed_from_u64(0xF0_22EE);
    for _ in 0..16 {
        let (cfg, batch) = config_and_batch(&mut rng);
        let extra = rng.gen_range(8usize..200);
        let target = AgeEncoder::min_target_bytes(&cfg)
            .max((16 + cfg.max_len() + 6 * 6).div_ceil(8))
            + extra;
        let encoders: Vec<Box<dyn Encoder>> = vec![
            Box::new(AgeEncoder::new(target)),
            Box::new(StandardEncoder),
            Box::new(PaddedEncoder::for_config(&cfg)),
            Box::new(SingleEncoder::new(target)),
            Box::new(UnshiftedEncoder::new(target)),
            Box::new(PrunedEncoder::new(target)),
        ];
        for enc in &encoders {
            let msg = enc.encode(&batch, &cfg).expect("valid batches encode");
            let decoded = enc
                .decode(&msg, &cfg)
                .unwrap_or_else(|e| panic!("{} rejected its own message: {e}", enc.name()));
            assert_valid(&decoded, &cfg, enc.name());
        }
    }
}
