//! Allocation-regression tests for the encode hot path.
//!
//! `Encoder::encode_into` with a reused `EncodeScratch` and output buffer
//! must perform **zero heap allocations** in steady state — after one
//! warm-up call has grown every scratch buffer to its working size. A
//! low-power sensor loop encodes thousands of batches; any per-batch
//! allocation is a deterministic regression this test binary catches with a
//! counting global allocator.
//!
//! This test binary owns its `#[global_allocator]`, so these checks live
//! here rather than in the telemetry crate's unit tests. Counters are
//! thread-local and each libtest test runs on its own thread, so the tests
//! do not interfere with each other.

use age_core::{
    AgeEncoder, Batch, BatchConfig, DeltaCodec, EncodeScratch, Encoder, PaddedEncoder,
    PrunedEncoder, SingleEncoder, StandardEncoder, UnshiftedEncoder,
};
use age_fixed::Format;
use age_telemetry::alloc::{self, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn cfg() -> BatchConfig {
    BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap()
}

/// Deterministic batch of `k` measurements whose values ramp across several
/// magnitudes, so grouping/merging/splitting all do real work.
fn ramp_batch(k: usize, features: usize) -> Batch {
    let indices: Vec<usize> = (0..k).collect();
    let values: Vec<f64> = (0..k * features)
        .map(|i| {
            let x = i as f64;
            (x * 0.17).sin() * (1.0 + (i % 7) as f64) - 2.5
        })
        .collect();
    Batch::new(indices, values).unwrap()
}

fn test_batches() -> Vec<Batch> {
    vec![
        Batch::empty(),
        ramp_batch(1, 6),
        ramp_batch(25, 6),
        ramp_batch(50, 6),
    ]
}

/// After warming up on every batch once, re-encoding any of them must not
/// touch the heap at all.
fn assert_zero_alloc(name: &str, encoder: &dyn Encoder, batches: &[Batch], cfg: &BatchConfig) {
    let mut scratch = EncodeScratch::new();
    let mut out = Vec::new();
    // Warm-up: grows every scratch buffer to its high-water mark.
    for batch in batches {
        encoder
            .encode_into(batch, cfg, &mut scratch, &mut out)
            .unwrap_or_else(|e| panic!("{name}: warm-up encode failed: {e}"));
    }
    for (bi, batch) in batches.iter().enumerate() {
        let before = alloc::snapshot();
        for _ in 0..5 {
            encoder
                .encode_into(batch, cfg, &mut scratch, &mut out)
                .unwrap_or_else(|e| panic!("{name}: steady-state encode failed: {e}"));
        }
        let delta = alloc::snapshot().since(before);
        assert_eq!(
            delta.allocations,
            0,
            "{name}: batch #{bi} (k={}) allocated {} times ({} bytes) in steady state",
            batch.len(),
            delta.allocations,
            delta.bytes,
        );
    }
}

#[test]
fn age_encoder_is_allocation_free_in_steady_state() {
    // Roomy target: no pruning needed.
    assert_zero_alloc("AGE/220", &AgeEncoder::new(220), &test_batches(), &cfg());
}

#[test]
fn age_encoder_prune_path_is_allocation_free() {
    // Tight target: forces the §4.2 prune stage on full batches.
    assert_zero_alloc("AGE/35", &AgeEncoder::new(35), &test_batches(), &cfg());
}

#[test]
fn age_encoder_without_splitting_is_allocation_free() {
    assert_zero_alloc(
        "AGE/no-split",
        &AgeEncoder::new(220).with_group_splitting(false),
        &test_batches(),
        &cfg(),
    );
}

#[test]
fn standard_encoder_is_allocation_free_in_steady_state() {
    assert_zero_alloc("Standard", &StandardEncoder, &test_batches(), &cfg());
}

#[test]
fn padded_encoder_is_allocation_free_in_steady_state() {
    let cfg = cfg();
    assert_zero_alloc(
        "Padded",
        &PaddedEncoder::for_config(&cfg),
        &test_batches(),
        &cfg,
    );
}

#[test]
fn ablation_encoders_are_allocation_free_in_steady_state() {
    let cfg = cfg();
    assert_zero_alloc("Single", &SingleEncoder::new(220), &test_batches(), &cfg);
    assert_zero_alloc(
        "Unshifted",
        &UnshiftedEncoder::new(220),
        &test_batches(),
        &cfg,
    );
    assert_zero_alloc("Pruned", &PrunedEncoder::new(35), &test_batches(), &cfg);
    assert_zero_alloc("Delta", &DeltaCodec, &test_batches(), &cfg);
}

/// The whole sensor-to-server path — encode, seal, transfer, open, decode —
/// must be allocation-free in steady state. This is the property the paper's
/// MCU deployment depends on: a sensor sampling for months cannot afford a
/// heap that fragments, and the receiving server amortizes one buffer set
/// across millions of frames.
#[test]
fn full_round_trip_is_allocation_free_in_steady_state() {
    use age_crypto::ChaCha20Poly1305;
    use age_transport::{Receiver, Sensor};

    let cfg = cfg();
    let encoder = AgeEncoder::new(220);
    let key = [0x42u8; 32];
    let mut sensor = Sensor::new(Box::new(ChaCha20Poly1305::new(key)));
    let mut receiver = Receiver::new(Box::new(ChaCha20Poly1305::new(key)));
    let batches = test_batches();

    let mut scratch = EncodeScratch::new();
    let mut message = Vec::new();
    let mut frame = Vec::new();
    let mut opened = Vec::new();
    let mut decoded = Batch::empty();

    let mut round_trip = |batch: &Batch,
                          scratch: &mut EncodeScratch,
                          message: &mut Vec<u8>,
                          frame: &mut Vec<u8>,
                          opened: &mut Vec<u8>,
                          decoded: &mut Batch| {
        encoder
            .encode_into(batch, &cfg, scratch, message)
            .expect("bench batches encode");
        sensor.seal_into(message, frame);
        receiver
            .receive_into(frame, opened)
            .expect("sealed frames open");
        encoder
            .decode_into(opened, &cfg, scratch, decoded)
            .expect("sealed messages decode");
        assert_eq!(
            decoded.indices(),
            batch.indices(),
            "round trip lost indices"
        );
    };

    // Warm-up: grow every buffer (scratch, frame, replay window) to its
    // working size.
    for batch in &batches {
        round_trip(
            batch,
            &mut scratch,
            &mut message,
            &mut frame,
            &mut opened,
            &mut decoded,
        );
    }
    for (bi, batch) in batches.iter().enumerate() {
        let before = alloc::snapshot();
        for _ in 0..5 {
            round_trip(
                batch,
                &mut scratch,
                &mut message,
                &mut frame,
                &mut opened,
                &mut decoded,
            );
        }
        let delta = alloc::snapshot().since(before);
        assert_eq!(
            delta.allocations,
            0,
            "round trip: batch #{bi} (k={}) allocated {} times ({} bytes) in steady state",
            batch.len(),
            delta.allocations,
            delta.bytes,
        );
    }
}

#[test]
fn encode_into_matches_encode_bytes() {
    let cfg = cfg();
    let encoders: Vec<Box<dyn Encoder>> = vec![
        Box::new(AgeEncoder::new(220)),
        Box::new(AgeEncoder::new(35)),
        Box::new(StandardEncoder),
        Box::new(PaddedEncoder::for_config(&cfg)),
        Box::new(SingleEncoder::new(220)),
        Box::new(UnshiftedEncoder::new(220)),
        Box::new(PrunedEncoder::new(35)),
        Box::new(DeltaCodec),
    ];
    let mut scratch = EncodeScratch::new();
    let mut out = Vec::new();
    for encoder in &encoders {
        for batch in &test_batches() {
            let fresh = encoder.encode(batch, &cfg).unwrap();
            encoder
                .encode_into(batch, &cfg, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(
                fresh,
                out,
                "{}: encode and encode_into disagree for k={}",
                encoder.name(),
                batch.len()
            );
        }
    }
}
