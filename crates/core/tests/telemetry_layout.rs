//! Round-trip property tests tying emitted telemetry records to the wire:
//! the record an encoder emits must agree field-for-field with what
//! `inspect_message` parses back out of the message bytes.

#![cfg(feature = "telemetry")]

use std::sync::Arc;

use age_core::{inspect_message, AgeEncoder, Batch, BatchConfig, Encoder, PaddedEncoder};
use age_fixed::Format;
use age_telemetry::{install_thread, DetRng, RecordingSink, SliceShuffle};

const CASES: usize = 64;

/// A random batch configuration plus a consistent batch (mirrors the
/// generator in `properties.rs`).
fn config_and_batch(rng: &mut DetRng) -> (BatchConfig, Batch) {
    let max_len = rng.gen_range(2usize..120);
    let features = rng.gen_range(1usize..6);
    let width = rng.gen_range(4u32..=24) as u8;
    let n = rng.gen_range(0i64..20) as i16;
    let n = (n % i16::from(width)).max(1);
    let fmt = Format::from_integer_bits(width, n as u8).expect("valid by construction");
    let cfg = BatchConfig::new(max_len, features, fmt).expect("valid by construction");
    let k = rng.gen_range(0usize..=max_len);
    let lo = cfg.format().min_value();
    let hi = cfg.format().max_value();
    let values: Vec<f64> = (0..k * cfg.features())
        .map(|_| rng.gen_range(lo..hi))
        .collect();
    let mut all: Vec<usize> = (0..cfg.max_len()).collect();
    all.shuffle(rng);
    all.truncate(k);
    all.sort_unstable();
    let batch = Batch::new(all, values).expect("generator builds valid batches");
    (cfg, batch)
}

/// AGE: the emitted record is exactly the layout `inspect_message` recovers
/// from the bytes, and the message hits its target.
#[test]
fn age_records_match_inspected_layouts() {
    let mut rng = DetRng::seed_from_u64(0x1A70);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let extra = rng.gen_range(0usize..200);
        let target = AgeEncoder::min_target_bytes(&cfg) + extra;
        let enc = AgeEncoder::new(target);

        let sink = Arc::new(RecordingSink::new());
        let message = {
            let _guard = install_thread(sink.clone());
            enc.encode(&batch, &cfg).unwrap()
        };
        let records = sink.records();
        assert_eq!(records.len(), 1, "one encode must emit one record");
        let rec = &records[0];

        assert_eq!(rec.encoder, "AGE");
        assert_eq!(rec.input_len, batch.len());
        assert_eq!(rec.message_len, message.len());
        assert_eq!(rec.message_len, target);
        assert_eq!(rec.target_bytes, Some(target));

        let layout = inspect_message(&message, &cfg).unwrap();
        assert_eq!(rec.kept_len, layout.measurements);
        assert_eq!(rec.header_bits, layout.header_bits);
        assert_eq!(rec.directory_bits, layout.directory_bits);
        assert_eq!(rec.data_bits, layout.data_bits);
        assert_eq!(rec.padding_bits, layout.padding_bits);
        assert_eq!(rec.groups_final, layout.groups.len());
        assert_eq!(rec.groups.len(), layout.groups.len());
        for (got, wire) in rec.groups.iter().zip(&layout.groups) {
            assert_eq!(got.count, wire.count);
            assert_eq!(got.exponent, i32::from(wire.exponent));
            assert_eq!(got.width, wire.width);
            assert_eq!(
                got.count * cfg.features() * usize::from(got.width),
                wire.data_bits
            );
        }
        // No relation is asserted between `groups_initial` and
        // `groups_final`: merging shrinks the partition but the §4.3
        // utilization expansion can split it again.
    }
}

/// Padded: the record's length equals the buffer and the configured pad,
/// and the four sections tile the message exactly.
#[test]
fn padded_records_match_buffer_and_pad_target() {
    let mut rng = DetRng::seed_from_u64(0x1A71);
    for _ in 0..CASES {
        let (cfg, batch) = config_and_batch(&mut rng);
        let enc = PaddedEncoder::for_config(&cfg);

        let sink = Arc::new(RecordingSink::new());
        let message = {
            let _guard = install_thread(sink.clone());
            enc.encode(&batch, &cfg).unwrap()
        };
        let records = sink.records();
        assert_eq!(records.len(), 1);
        let rec = &records[0];

        assert_eq!(rec.encoder, "Padded");
        assert_eq!(rec.message_len, message.len());
        assert_eq!(rec.message_len, enc.pad_to());
        assert_eq!(rec.target_bytes, Some(enc.pad_to()));
        assert_eq!(rec.input_len, batch.len());
        assert_eq!(rec.kept_len, batch.len(), "padding never drops data");
        assert_eq!(
            rec.header_bits + rec.directory_bits + rec.data_bits + rec.padding_bits,
            rec.message_len * 8,
            "layout sections must tile the padded message"
        );
    }
}
