//! Known-answer and property tests for the HKDF-style ratchet.
//!
//! The construction is from scratch, so there is no external vector suite
//! to borrow. Two defenses instead:
//!
//! 1. **Committed self-generated vectors.** The hex strings below were
//!    produced by the implementation once and committed; any later change
//!    to the permutation, the absorb framing, or the labels breaks them.
//! 2. **An independent reference implementation.** `ref_hchacha20` below
//!    is written directly from the RFC 7539 quarter-round pseudocode —
//!    scalar, index-based, sharing no code with the crate's lane-sliced
//!    permutation — and must agree with `hchacha20` on random inputs.

use age_crypto::kdf::{expand, extract, fleet_secret, hchacha20, sensor_root, EpochRatchet};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// --- committed known-answer vectors -----------------------------------

#[test]
fn hchacha20_known_answer() {
    let key: [u8; 32] = core::array::from_fn(|i| i as u8);
    let input: [u8; 16] = core::array::from_fn(|i| (0xf0 + i) as u8);
    assert_eq!(
        hex(&hchacha20(&key, &input)),
        "969e1d9115842722d5eae8d284f3b3df60f137195872dc2cfb786bf75a22054d"
    );
}

#[test]
fn extract_known_answers() {
    assert_eq!(
        hex(&extract(b"", b"")),
        "60296672920a67516a305044bfad19bb1d237d10a0d40c5a4502515b774b3931"
    );
    assert_eq!(
        hex(&extract(b"salt", b"input keying material")),
        "9c8eb8845ad4dcf607c860555deca84555e4c5e5560ac0b637f95c0a8726b157"
    );
}

#[test]
fn expand_known_answer() {
    let prk = extract(b"salt", b"input keying material");
    let mut okm = [0u8; 64];
    expand(&prk, b"age kat", &mut okm);
    assert_eq!(
        hex(&okm),
        "5ec50ca7aaf5e105d96c2d95a271a79fa8e62c68ee938dde01842f961b614cc2\
         ee4b6250f423a44abbf30d81f82e732eedf66c182dc17187d462719a7edd304a"
    );
}

#[test]
fn lifecycle_known_answers() {
    assert_eq!(
        hex(&fleet_secret(2022)),
        "017a88bf2b4299c90782753f01ab4385caa71f5419eae0be0ce35995a9b82811"
    );
    let root = sensor_root(&fleet_secret(2022), 7);
    assert_eq!(
        hex(&root),
        "37d51ad8700e33501d2efdb1b4a73c70f2df8d1c3e988eeffbe6bc322cd159c6"
    );
    let mut ratchet = EpochRatchet::new(root);
    assert_eq!(
        hex(&ratchet.key()),
        "199ce04ac5fe1ad45992abcbadc59f581e31e168240e9c2ab5fd1484702e4b15"
    );
    ratchet.advance();
    assert_eq!(
        hex(&ratchet.key()),
        "a9a52d7c912e76e6756f57c34c2034c21326cd0daf6f735f6d5c501cb64c4ae2"
    );
    ratchet.seek(5);
    assert_eq!(
        hex(&ratchet.key()),
        "ce27c72a6754c468d53f27290391661789ce0679fab5c77244cde8a984d665a7"
    );
}

// --- independent reference implementation -----------------------------

/// RFC 7539 §2.1 quarter round, written scalar and index-based — the
/// crate's implementation works on four-lane rows instead, so agreement
/// is a genuine cross-check rather than the same code twice.
fn ref_quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// HChaCha20 from the spec: constants ‖ key ‖ input, 20 rounds, no final
/// addition, output words 0..4 and 12..16.
fn ref_hchacha20(key: &[u8; 32], input: &[u8; 16]) -> [u8; 32] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    for i in 0..4 {
        state[12 + i] = u32::from_le_bytes(input[4 * i..4 * i + 4].try_into().unwrap());
    }
    for _ in 0..10 {
        ref_quarter_round(&mut state, 0, 4, 8, 12);
        ref_quarter_round(&mut state, 1, 5, 9, 13);
        ref_quarter_round(&mut state, 2, 6, 10, 14);
        ref_quarter_round(&mut state, 3, 7, 11, 15);
        ref_quarter_round(&mut state, 0, 5, 10, 15);
        ref_quarter_round(&mut state, 1, 6, 11, 12);
        ref_quarter_round(&mut state, 2, 7, 8, 13);
        ref_quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[4 * i..4 * i + 4].copy_from_slice(&state[i].to_le_bytes());
        out[16 + 4 * i..16 + 4 * i + 4].copy_from_slice(&state[12 + i].to_le_bytes());
    }
    out
}

/// A tiny deterministic byte generator for the cross-check inputs (no
/// external RNG crate; splitmix64 over a counter).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fill(seed: u64, out: &mut [u8]) {
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        let word = mix(seed.wrapping_add(i as u64)).to_le_bytes();
        chunk.copy_from_slice(&word[..chunk.len()]);
    }
}

#[test]
fn hchacha20_matches_reference_on_random_inputs() {
    for seed in 0..200u64 {
        let mut key = [0u8; 32];
        let mut input = [0u8; 16];
        fill(mix(seed), &mut key);
        fill(mix(seed ^ 0xdead_beef), &mut input);
        assert_eq!(
            hchacha20(&key, &input),
            ref_hchacha20(&key, &input),
            "divergence at seed {seed}"
        );
    }
}

// --- property tests ----------------------------------------------------

#[test]
fn distinct_sensor_epoch_pairs_get_distinct_keys() {
    use std::collections::HashSet;

    let secret = fleet_secret(0xA11CE);
    let mut seen: HashSet<[u8; 32]> = HashSet::new();
    for sensor in 0..24u64 {
        let root = sensor_root(&secret, sensor);
        let mut ratchet = EpochRatchet::new(root);
        for _epoch in 0..24u64 {
            assert!(
                seen.insert(ratchet.key()),
                "key collision at sensor {sensor} epoch {}",
                ratchet.epoch()
            );
            ratchet.advance();
        }
    }
    // 24 sensors × 24 epochs, all pairwise distinct.
    assert_eq!(seen.len(), 24 * 24);
}

#[test]
fn old_epoch_key_is_not_derivable_from_advanced_state() {
    // Forward secrecy, operationally: from a ratchet at epoch e+1 there
    // is no API that returns epoch e's key, and seeking backward refuses
    // to move. (The cryptographic guarantee is the one-way chain step;
    // this pins the API surface that enforces it.)
    let root = sensor_root(&fleet_secret(9), 3);
    let mut ratchet = EpochRatchet::new(root);
    let old_key = ratchet.key();
    ratchet.advance();
    ratchet.seek(0);
    assert_eq!(ratchet.epoch(), 1);
    assert_ne!(ratchet.key(), old_key);
}

#[test]
fn fleet_secrets_differ_across_seeds() {
    assert_ne!(fleet_secret(1), fleet_secret(2));
    assert_ne!(
        sensor_root(&fleet_secret(1), 0),
        sensor_root(&fleet_secret(1), 1)
    );
}
