//! Randomized property tests for the cipher suite, driven by the
//! workspace's deterministic PRNG (no external test deps).
//!
//! The side-channel defense rests on two cipher properties: exact,
//! content-independent framing (lengths are a function of plaintext length
//! only) and round-trip correctness. Both are enforced here for every
//! implementation.

use age_crypto::{Aes128, AesCbc, AesCtr, ChaCha20, ChaCha20Poly1305, Cipher};
use age_telemetry::DetRng;

const CASES: usize = 64;

fn ciphers(key_byte: u8) -> Vec<Box<dyn Cipher>> {
    vec![
        Box::new(ChaCha20::new([key_byte; 32])),
        Box::new(ChaCha20Poly1305::new([key_byte; 32])),
        Box::new(AesCtr::new([key_byte; 16])),
        Box::new(AesCbc::new([key_byte; 16])),
    ]
}

fn random_bytes(rng: &mut DetRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

/// seal ∘ open = id for every cipher, plaintext, and sequence number.
#[test]
fn seal_open_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xC1);
    for _ in 0..CASES {
        let key = rng.gen_range(0u32..256) as u8;
        let seq = rng.next_u64();
        let len = rng.gen_range(0usize..600);
        let plaintext = random_bytes(&mut rng, len);
        for cipher in ciphers(key) {
            let sealed = cipher.seal(seq, &plaintext);
            assert_eq!(cipher.open(&sealed).unwrap(), plaintext);
        }
    }
}

/// The on-air length equals the documented framing exactly and depends
/// only on the plaintext length — never its content.
#[test]
fn message_length_is_content_independent() {
    let mut rng = DetRng::seed_from_u64(0xC2);
    for _ in 0..CASES {
        let key = rng.gen_range(0u32..256) as u8;
        let len = rng.gen_range(0usize..600);
        let fill_a = rng.gen_range(0u32..256) as u8;
        let fill_b = rng.gen_range(0u32..256) as u8;
        for cipher in ciphers(key) {
            let a = cipher.seal(1, &vec![fill_a; len]);
            let b = cipher.seal(2, &vec![fill_b; len]);
            assert_eq!(a.len(), b.len());
            assert_eq!(a.len(), cipher.message_len(len));
        }
    }
}

/// Distinct sequence numbers give distinct ciphertexts (nonce reuse would
/// break confidentiality silently).
#[test]
fn sequence_numbers_vary_ciphertexts() {
    let mut rng = DetRng::seed_from_u64(0xC3);
    for _ in 0..CASES {
        let key = rng.gen_range(0u32..256) as u8;
        let seq_a = rng.next_u64();
        let seq_b = rng.next_u64();
        if seq_a == seq_b {
            continue;
        }
        let len = rng.gen_range(1usize..200);
        let plaintext = random_bytes(&mut rng, len);
        for cipher in ciphers(key) {
            let a = cipher.seal(seq_a, &plaintext);
            let b = cipher.seal(seq_b, &plaintext);
            assert_ne!(a, b);
        }
    }
}

/// AES block encrypt/decrypt are inverses on arbitrary blocks.
#[test]
fn aes_block_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xC4);
    for _ in 0..CASES {
        let mut key = [0u8; 16];
        let mut block = [0u8; 16];
        for b in key.iter_mut().chain(block.iter_mut()) {
            *b = rng.gen_range(0u32..256) as u8;
        }
        let aes = Aes128::new(key);
        assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }
}

/// The AEAD rejects any single-bit corruption.
#[test]
fn aead_detects_all_single_bit_flips() {
    let mut rng = DetRng::seed_from_u64(0xC5);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..128);
        let plaintext = random_bytes(&mut rng, len);
        let aead = ChaCha20Poly1305::new([0x77; 32]);
        let sealed = aead.seal(3, &plaintext);
        let mut forged = sealed.clone();
        let pos = rng.gen_range(0usize..forged.len());
        let bit = rng.gen_range(0u32..8);
        forged[pos] ^= 1 << bit;
        assert!(aead.open(&forged).is_err(), "flip at {pos}:{bit} accepted");
    }
}

/// Opening never panics on arbitrary byte soup.
#[test]
fn open_is_panic_free() {
    let mut rng = DetRng::seed_from_u64(0xC6);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..300);
        let bytes = random_bytes(&mut rng, len);
        for cipher in ciphers(0x11) {
            let _ = cipher.open(&bytes);
        }
    }
}

/// ChaCha20 keystream application is an involution.
#[test]
fn chacha_keystream_is_involution() {
    let mut rng = DetRng::seed_from_u64(0xC7);
    for _ in 0..CASES {
        let mut key = [0u8; 32];
        for b in &mut key {
            *b = rng.gen_range(0u32..256) as u8;
        }
        let mut nonce = [0u8; 12];
        for b in &mut nonce {
            *b = rng.gen_range(0u32..256) as u8;
        }
        let counter = rng.gen_range(0u32..u32::MAX);
        let len = rng.gen_range(0usize..300);
        let mut data = random_bytes(&mut rng, len);
        let original = data.clone();
        let cipher = ChaCha20::new(key);
        cipher.apply_keystream(&nonce, counter, &mut data);
        cipher.apply_keystream(&nonce, counter, &mut data);
        assert_eq!(data, original);
    }
}
