//! Property-based tests for the cipher suite.
//!
//! The side-channel defense rests on two cipher properties: exact,
//! content-independent framing (lengths are a function of plaintext length
//! only) and round-trip correctness. Both are enforced here for every
//! implementation.

use age_crypto::{Aes128, AesCbc, AesCtr, ChaCha20, ChaCha20Poly1305, Cipher};
use proptest::prelude::*;

fn ciphers(key_byte: u8) -> Vec<Box<dyn Cipher>> {
    vec![
        Box::new(ChaCha20::new([key_byte; 32])),
        Box::new(ChaCha20Poly1305::new([key_byte; 32])),
        Box::new(AesCtr::new([key_byte; 16])),
        Box::new(AesCbc::new([key_byte; 16])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// seal ∘ open = id for every cipher, plaintext, and sequence number.
    #[test]
    fn seal_open_roundtrip(
        key in any::<u8>(),
        seq in any::<u64>(),
        plaintext in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        for cipher in ciphers(key) {
            let sealed = cipher.seal(seq, &plaintext);
            prop_assert_eq!(cipher.open(&sealed).unwrap(), plaintext.clone());
        }
    }

    /// The on-air length equals the documented framing exactly and depends
    /// only on the plaintext length — never its content.
    #[test]
    fn message_length_is_content_independent(
        key in any::<u8>(),
        len in 0usize..600,
        fill_a in any::<u8>(),
        fill_b in any::<u8>(),
    ) {
        for cipher in ciphers(key) {
            let a = cipher.seal(1, &vec![fill_a; len]);
            let b = cipher.seal(2, &vec![fill_b; len]);
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(a.len(), cipher.message_len(len));
        }
    }

    /// Distinct sequence numbers give distinct ciphertexts (nonce reuse
    /// would break confidentiality silently).
    #[test]
    fn sequence_numbers_vary_ciphertexts(
        key in any::<u8>(),
        seq_a in any::<u64>(),
        seq_b in any::<u64>(),
        plaintext in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        prop_assume!(seq_a != seq_b);
        for cipher in ciphers(key) {
            let a = cipher.seal(seq_a, &plaintext);
            let b = cipher.seal(seq_b, &plaintext);
            prop_assert_ne!(a, b);
        }
    }

    /// AES block encrypt/decrypt are inverses on arbitrary blocks.
    #[test]
    fn aes_block_roundtrip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(key);
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }

    /// The AEAD rejects any single-bit corruption.
    #[test]
    fn aead_detects_all_single_bit_flips(
        plaintext in prop::collection::vec(any::<u8>(), 0..128),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let aead = ChaCha20Poly1305::new([0x77; 32]);
        let sealed = aead.seal(3, &plaintext);
        let mut forged = sealed.clone();
        let pos = flip_byte.index(forged.len());
        forged[pos] ^= 1 << flip_bit;
        prop_assert!(aead.open(&forged).is_err());
    }

    /// Opening never panics on arbitrary byte soup.
    #[test]
    fn open_is_panic_free(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        for cipher in ciphers(0x11) {
            let _ = cipher.open(&bytes);
        }
    }

    /// ChaCha20 keystream application is an involution.
    #[test]
    fn chacha_keystream_is_involution(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        mut data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let original = data.clone();
        let cipher = ChaCha20::new(key);
        cipher.apply_keystream(&nonce, counter, &mut data);
        cipher.apply_keystream(&nonce, counter, &mut data);
        prop_assert_eq!(data, original);
    }
}
