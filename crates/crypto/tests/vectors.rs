//! Known-answer tests against the published specifications.
//!
//! - ChaCha20 block function and encryption: RFC 7539 §2.3.2 and §2.4.2.
//! - Poly1305 MAC: RFC 7539 §2.5.2.
//! - AES-128 block cipher: FIPS-197 Appendix B.
//! - AES-128 in CTR mode: NIST SP 800-38A §F.5.1/§F.5.2.
//!
//! The CTR vectors are checked with hand-rolled counter blocks because
//! SP 800-38A increments the whole 128-bit block, while [`age_crypto::AesCtr`]
//! uses its own explicit-IV framing; the block cipher underneath must still
//! match the standard exactly.

use age_crypto::{
    chacha20_block, poly1305, Aes128, AesCbc, AesCtr, ChaCha20, ChaCha20Poly1305, Cipher,
};

/// Decodes a whitespace-separated hex string (test-only helper).
fn hex(s: &str) -> Vec<u8> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(compact.len().is_multiple_of(2), "odd hex length");
    (0..compact.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&compact[i..i + 2], 16).expect("valid hex"))
        .collect()
}

fn rfc7539_key() -> [u8; 32] {
    let mut key = [0u8; 32];
    for (i, byte) in key.iter_mut().enumerate() {
        *byte = i as u8;
    }
    key
}

#[test]
fn chacha20_block_function_rfc7539_2_3_2() {
    let key = rfc7539_key();
    let nonce = [
        0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
    ];
    let block = chacha20_block(&key, 1, &nonce);
    let expected = hex("10 f1 e7 e4 d1 3b 59 15 50 0f dd 1f a3 20 71 c4
         c7 d1 f4 c7 33 c0 68 03 04 22 aa 9a c3 d4 6c 4e
         d2 82 64 46 07 9f aa 09 14 c2 d7 05 d9 8b 02 a2
         b5 12 9c d1 de 16 4e b9 cb d0 83 e8 a2 50 3c 4e");
    assert_eq!(block.as_slice(), expected.as_slice());
}

#[test]
fn chacha20_encryption_rfc7539_2_4_2() {
    let key = rfc7539_key();
    let nonce = [
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
    ];
    let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                      only one tip for the future, sunscreen would be it.";
    let mut data = plaintext.to_vec();
    ChaCha20::new(key).apply_keystream(&nonce, 1, &mut data);
    let expected = hex("6e 2e 35 9a 25 68 f9 80 41 ba 07 28 dd 0d 69 81
         e9 7e 7a ec 1d 43 60 c2 0a 27 af cc fd 9f ae 0b
         f9 1b 65 c5 52 47 33 ab 8f 59 3d ab cd 62 b3 57
         16 39 d6 24 e6 51 52 ab 8f 53 0c 35 9f 08 61 d8
         07 ca 0d bf 50 0d 6a 61 56 a3 8e 08 8a 22 b6 5e
         52 bc 51 4d 16 cc f8 06 81 8c e9 1a b7 79 37 36
         5a f9 0b bf 74 a3 5b e6 b4 0b 8e ed f2 78 5e 42
         87 4d");
    assert_eq!(data, expected);
    // Applying the keystream again decrypts.
    ChaCha20::new(key).apply_keystream(&nonce, 1, &mut data);
    assert_eq!(data.as_slice(), plaintext.as_slice());
}

#[test]
fn poly1305_mac_rfc7539_2_5_2() {
    let key: [u8; 32] = hex("85 d6 be 78 57 55 6d 33 7f 44 52 fe 42 d5 06 a8
         01 03 80 8a fb 0d b2 fd 4a bf f6 af 41 49 f5 1b")
    .try_into()
    .unwrap();
    let tag = poly1305(&key, b"Cryptographic Forum Research Group");
    let expected: [u8; 16] = hex("a8 06 1d c1 30 51 36 c6 c2 2b 8b af 0c 01 27 a9")
        .try_into()
        .unwrap();
    assert_eq!(tag, expected);
}

#[test]
fn aes128_block_fips197_appendix_b() {
    let key: [u8; 16] = hex("2b 7e 15 16 28 ae d2 a6 ab f7 15 88 09 cf 4f 3c")
        .try_into()
        .unwrap();
    let plaintext: [u8; 16] = hex("32 43 f6 a8 88 5a 30 8d 31 31 98 a2 e0 37 07 34")
        .try_into()
        .unwrap();
    let ciphertext: [u8; 16] = hex("39 25 84 1d 02 dc 09 fb dc 11 85 97 19 6a 0b 32")
        .try_into()
        .unwrap();
    let aes = Aes128::new(key);
    assert_eq!(aes.encrypt_block(plaintext), ciphertext);
    assert_eq!(aes.decrypt_block(ciphertext), plaintext);
}

/// Key, initial counter, and the four plaintext/ciphertext block pairs of
/// SP 800-38A §F.5, shared by the encrypt (F.5.1) and decrypt (F.5.2) cases.
struct CtrVectors {
    key: [u8; 16],
    counter0: [u8; 16],
    plaintext: Vec<Vec<u8>>,
    ciphertext: Vec<Vec<u8>>,
}

fn sp800_38a_f5() -> CtrVectors {
    let key = hex("2b 7e 15 16 28 ae d2 a6 ab f7 15 88 09 cf 4f 3c")
        .try_into()
        .unwrap();
    let counter0 = hex("f0 f1 f2 f3 f4 f5 f6 f7 f8 f9 fa fb fc fd fe ff")
        .try_into()
        .unwrap();
    let plaintext = [
        "6b c1 be e2 2e 40 9f 96 e9 3d 7e 11 73 93 17 2a",
        "ae 2d 8a 57 1e 03 ac 9c 9e b7 6f ac 45 af 8e 51",
        "30 c8 1c 46 a3 5c e4 11 e5 fb c1 19 1a 0a 52 ef",
        "f6 9f 24 45 df 4f 9b 17 ad 2b 41 7b e6 6c 37 10",
    ]
    .iter()
    .map(|s| hex(s))
    .collect();
    let ciphertext = [
        "87 4d 61 91 b6 20 e3 26 1b ef 68 64 99 0d b6 ce",
        "98 06 f6 6b 79 70 fd ff 86 17 18 7b b9 ff fd ff",
        "5a e4 df 3e db d5 d3 5e 5b 4f 09 02 0d b0 3e ab",
        "1e 03 1d da 2f be 03 d1 79 21 70 a0 f3 00 9c ee",
    ]
    .iter()
    .map(|s| hex(s))
    .collect();
    CtrVectors {
        key,
        counter0,
        plaintext,
        ciphertext,
    }
}

/// Increments an SP 800-38A counter block as one big-endian 128-bit integer.
fn bump_counter(block: &mut [u8; 16]) {
    for byte in block.iter_mut().rev() {
        *byte = byte.wrapping_add(1);
        if *byte != 0 {
            break;
        }
    }
}

#[test]
fn aes128_ctr_sp800_38a_f5_1_encrypt() {
    let v = sp800_38a_f5();
    let mut counter = v.counter0;
    let aes = Aes128::new(v.key);
    for (pt, ct) in v.plaintext.iter().zip(&v.ciphertext) {
        let keystream = aes.encrypt_block(counter);
        let out: Vec<u8> = pt.iter().zip(keystream).map(|(p, k)| p ^ k).collect();
        assert_eq!(&out, ct);
        bump_counter(&mut counter);
    }
}

/// The multi-block `apply_keystream` fast path must agree with composing
/// the RFC 7539 block function one counter at a time — including at
/// non-zero starting counters, across block boundaries, and on trailing
/// partial blocks.
#[test]
fn chacha20_multi_block_keystream_matches_block_composition() {
    let key = rfc7539_key();
    let nonce = [
        0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
    ];
    let cipher = ChaCha20::new(key);
    for &counter in &[0u32, 1, 2, 1000, u32::MAX - 1, u32::MAX] {
        for &len in &[1usize, 63, 64, 65, 128, 200, 300] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut fast = plaintext.clone();
            cipher.apply_keystream(&nonce, counter, &mut fast);

            // Reference: one block-function call per 64-byte chunk, with
            // the counter wrapping like the in-state u32 does.
            let mut reference = plaintext.clone();
            for (i, chunk) in reference.chunks_mut(64).enumerate() {
                let block = chacha20_block(&key, counter.wrapping_add(i as u32), &nonce);
                for (byte, k) in chunk.iter_mut().zip(block.iter()) {
                    *byte ^= k;
                }
            }
            assert_eq!(fast, reference, "counter={counter} len={len}");
        }
    }
}

/// `seal_into`/`open_into` must be byte-for-byte and error-for-error
/// equivalent to `seal`/`open` on every workspace cipher, and must fully
/// replace the contents of a dirty output buffer.
#[test]
fn seal_into_and_open_into_match_allocating_forms() {
    let ciphers: Vec<(&str, Box<dyn Cipher>)> = vec![
        ("ChaCha20", Box::new(ChaCha20::new([0x42; 32]))),
        (
            "ChaCha20Poly1305",
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
        ),
        ("AesCtr", Box::new(AesCtr::new([0x42; 16]))),
        ("AesCbc", Box::new(AesCbc::new([0x42; 16]))),
    ];
    for (name, cipher) in &ciphers {
        for &len in &[0usize, 1, 15, 16, 17, 64, 220] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 13 + 7) as u8).collect();
            let sealed = cipher.seal(len as u64, &plaintext);

            let mut sealed_into = vec![0xAA; 500]; // dirty buffer
            cipher.seal_into(len as u64, &plaintext, &mut sealed_into);
            assert_eq!(sealed, sealed_into, "{name} seal len={len}");

            let opened = cipher.open(&sealed).expect("seal output opens");
            let mut opened_into = vec![0xBB; 500];
            cipher
                .open_into(&sealed, &mut opened_into)
                .expect("seal_into output opens");
            assert_eq!(opened, opened_into, "{name} open len={len}");
            assert_eq!(opened_into, plaintext, "{name} roundtrip len={len}");
        }
    }
}

/// Error parity on malformed input: `open_into` reports exactly the error
/// `open` does, for truncation, misalignment, and corruption.
#[test]
fn open_into_error_parity_with_open() {
    let ciphers: Vec<(&str, Box<dyn Cipher>)> = vec![
        ("ChaCha20", Box::new(ChaCha20::new([0x42; 32]))),
        (
            "ChaCha20Poly1305",
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
        ),
        ("AesCtr", Box::new(AesCtr::new([0x42; 16]))),
        ("AesCbc", Box::new(AesCbc::new([0x42; 16]))),
    ];
    for (name, cipher) in &ciphers {
        // Truncated messages, from empty up past each cipher's framing.
        for len in 0..40 {
            let msg = vec![0x5C; len];
            let via_open = cipher.open(&msg).map(|_| ());
            let mut out = Vec::new();
            let via_into = cipher.open_into(&msg, &mut out);
            assert_eq!(via_open, via_into, "{name} truncated len={len}");
        }
        // Corrupted full-size messages (bit flips through the whole frame).
        let sealed = cipher.seal(3, &[0x11; 32]);
        for i in 0..sealed.len() {
            let mut forged = sealed.clone();
            forged[i] ^= 0x80;
            let via_open = cipher.open(&forged).map(|_| ());
            let mut out = Vec::new();
            let via_into = cipher.open_into(&forged, &mut out);
            assert_eq!(via_open, via_into, "{name} flip at {i}");
        }
    }
}

#[test]
fn aes128_ctr_sp800_38a_f5_2_decrypt() {
    let v = sp800_38a_f5();
    let mut counter = v.counter0;
    let aes = Aes128::new(v.key);
    for (pt, ct) in v.plaintext.iter().zip(&v.ciphertext) {
        let keystream = aes.encrypt_block(counter);
        let out: Vec<u8> = ct.iter().zip(keystream).map(|(c, k)| c ^ k).collect();
        assert_eq!(&out, pt);
        bump_counter(&mut counter);
    }
}
