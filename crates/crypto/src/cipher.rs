//! The cipher abstraction used by the sensor pipeline.

use std::fmt;

/// Whether a cipher is a stream or block construction, which determines how
/// AGE rounds its target message size (§4.5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherKind {
    /// Ciphertext length equals plaintext length plus a fixed overhead.
    Stream,
    /// Ciphertext is padded up to a multiple of [`CipherKind::Block`]'s size.
    Block,
}

impl fmt::Display for CipherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CipherKind::Stream => f.write_str("stream"),
            CipherKind::Block => f.write_str("block"),
        }
    }
}

/// Error returned by [`Cipher::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenError {
    /// The message is shorter than the cipher's minimum framing.
    Truncated {
        /// Observed message length.
        len: usize,
        /// Minimum valid length.
        min: usize,
    },
    /// The message body is not aligned to the cipher's block size.
    Misaligned {
        /// Observed body length.
        len: usize,
        /// Required alignment.
        block: usize,
    },
    /// Padding bytes were malformed (block ciphers with PKCS#7).
    BadPadding,
}

impl fmt::Display for OpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OpenError::Truncated { len, min } => {
                write!(
                    f,
                    "message of {len} bytes is shorter than the {min}-byte framing"
                )
            }
            OpenError::Misaligned { len, block } => {
                write!(
                    f,
                    "message body of {len} bytes is not a multiple of the {block}-byte block"
                )
            }
            OpenError::BadPadding => f.write_str("invalid block padding"),
        }
    }
}

impl std::error::Error for OpenError {}

/// A symmetric cipher with deterministic message framing.
///
/// Implementations must guarantee that [`Cipher::seal`] produces exactly
/// [`Cipher::message_len`]`(plaintext.len())` bytes: the attacker in the
/// paper's threat model observes only this length, so the simulator relies
/// on it being exact.
///
/// `Send + Sync` is a supertrait so boxed ciphers (and the sessions that
/// hold them) can migrate across the gateway's shard worker threads;
/// every cipher here is plain key material plus counters, so this costs
/// implementations nothing.
pub trait Cipher: Send + Sync {
    /// Stream or block construction.
    fn kind(&self) -> CipherKind;

    /// Fixed per-message framing overhead in bytes (nonce or IV).
    fn overhead(&self) -> usize;

    /// Exact on-air message length for a plaintext of `plaintext_len` bytes.
    fn message_len(&self, plaintext_len: usize) -> usize;

    /// Encrypts `plaintext` for message number `sequence`, returning the
    /// framed message (`nonce/IV || ciphertext`).
    fn seal(&self, sequence: u64, plaintext: &[u8]) -> Vec<u8>;

    /// Decrypts a framed message.
    ///
    /// # Errors
    ///
    /// Returns [`OpenError`] if the framing is malformed.
    fn open(&self, message: &[u8]) -> Result<Vec<u8>, OpenError>;

    /// Encrypts `plaintext` into `out`, reusing its allocation.
    ///
    /// `out` is cleared first and holds exactly the framed message on
    /// return — byte-identical to [`Cipher::seal`]. The default delegates to
    /// `seal`; every workspace cipher overrides it to seal without touching
    /// the heap once `out` has grown to the message length, which is what
    /// keeps the transport send path allocation-free.
    fn seal_into(&self, sequence: u64, plaintext: &[u8], out: &mut Vec<u8>) {
        *out = self.seal(sequence, plaintext);
    }

    /// Decrypts a framed message into `out`, reusing its allocation.
    ///
    /// On success `out` holds exactly the plaintext, byte-identical to
    /// [`Cipher::open`]; on error its contents are unspecified. The default
    /// delegates to `open`; workspace ciphers override it to open without
    /// allocating.
    ///
    /// # Errors
    ///
    /// Returns [`OpenError`] if the framing is malformed.
    fn open_into(&self, message: &[u8], out: &mut Vec<u8>) -> Result<(), OpenError> {
        *out = self.open(message)?;
        Ok(())
    }

    /// Recovers the sequence number a framed message was sealed with, if
    /// the framing carries one (`None` if the message is too short to hold
    /// the nonce/IV). All workspace ciphers derive their nonce or IV
    /// deterministically from the sequence number, so the receiver's replay
    /// window can read it straight off the wire.
    fn sequence_of(&self, message: &[u8]) -> Option<u64> {
        let _ = message;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_impls_are_informative() {
        assert_eq!(CipherKind::Stream.to_string(), "stream");
        assert_eq!(CipherKind::Block.to_string(), "block");
        let e = OpenError::Truncated { len: 3, min: 12 };
        assert!(e.to_string().contains("3 bytes"));
        let e = OpenError::Misaligned { len: 17, block: 16 };
        assert!(e.to_string().contains("16-byte block"));
        assert!(OpenError::BadPadding.to_string().contains("padding"));
    }
}
