//! AES-128 (FIPS-197) with CTR and CBC-PKCS#7 modes.
//!
//! The paper's MCU deployment uses an AES-128 block cipher because the
//! MSP430 has a hardware accelerator (§5.1). For the evaluation only the
//! *framing* matters: CBC pads messages to 16-byte blocks (so AGE rounds its
//! target size to a block multiple), while CTR keeps the plaintext length.

use crate::cipher::{Cipher, CipherKind, OpenError};

const BLOCK: usize = 16;
const ROUNDS: usize = 10;

/// Forward S-box, generated from the AES finite-field inverse at start-up.
fn sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static SBOX: OnceLock<[u8; 256]> = OnceLock::new();
    SBOX.get_or_init(|| {
        let mut table = [0u8; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let inv = if i == 0 { 0 } else { gf_inverse(i as u8) };
            // Affine transformation: b ^ rotl1(b) ^ rotl2(b) ^ rotl3(b) ^
            // rotl4(b) ^ 0x63, applied to the field inverse.
            *slot = inv
                ^ inv.rotate_left(1)
                ^ inv.rotate_left(2)
                ^ inv.rotate_left(3)
                ^ inv.rotate_left(4)
                ^ 0x63;
        }
        table
    })
}

/// Inverse S-box derived from the forward table.
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let fwd = sbox();
        let mut table = [0u8; 256];
        for (i, &v) in fwd.iter().enumerate() {
            table[v as usize] = i as u8;
        }
        table
    })
}

/// Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let carry = a & 0x80 != 0;
        a <<= 1;
        if carry {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8) by exponentiation (a^254).
fn gf_inverse(a: u8) -> u8 {
    // a^254 = a^(2+4+8+16+32+64+128)
    let mut result = 1u8;
    let mut power = a; // a^1
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, power);
        }
        power = gf_mul(power, power);
        exp >>= 1;
    }
    result
}

/// The AES-128 block cipher: a 128-bit key schedule plus block
/// encrypt/decrypt primitives. Use [`AesCtr`] or [`AesCbc`] for messages.
///
/// # Examples
///
/// ```
/// use age_crypto::Aes128;
///
/// let key = [0u8; 16];
/// let aes = Aes128::new(key);
/// let block = [0u8; 16];
/// let ct = aes.encrypt_block(block);
/// assert_eq!(aes.decrypt_block(ct), block);
/// ```
#[derive(Debug, Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl Aes128 {
    /// Expands a 128-bit key into the round-key schedule.
    pub fn new(key: [u8; 16]) -> Self {
        let s = sbox();
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..w.len() {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = s[*byte as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let s = sbox();
        let mut state = block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(&mut state, s);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state, s);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[ROUNDS]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let inv = inv_sbox();
        let mut state = block;
        add_round_key(&mut state, &self.round_keys[ROUNDS]);
        for round in (1..ROUNDS).rev() {
            inv_shift_rows(&mut state);
            sub_bytes(&mut state, inv);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        sub_bytes(&mut state, inv);
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

// State is column-major: state[4*c + r] = row r, column c (FIPS-197 layout of
// a flat 16-byte block).

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

fn sub_bytes(state: &mut [u8; 16], table: &[u8; 256]) {
    for byte in state.iter_mut() {
        *byte = table[*byte as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let copy = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = copy[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let copy = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = copy[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
        state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
        state[4 * c] =
            gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        state[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        state[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

/// AES-128 in counter mode: message framing is `IV (16 bytes) || ciphertext`
/// with ciphertext length equal to plaintext length.
#[derive(Debug, Clone)]
pub struct AesCtr {
    aes: Aes128,
}

impl AesCtr {
    /// Creates a CTR-mode cipher from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        AesCtr {
            aes: Aes128::new(key),
        }
    }

    fn keystream_xor(&self, iv: &[u8; 16], data: &mut [u8]) {
        let mut counter_block = *iv;
        for (i, chunk) in data.chunks_mut(BLOCK).enumerate() {
            counter_block[8..].copy_from_slice(&(i as u64).to_be_bytes());
            let ks = self.aes.encrypt_block(counter_block);
            for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                *byte ^= k;
            }
        }
    }

    fn iv_for(sequence: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&sequence.to_be_bytes());
        iv
    }
}

impl Cipher for AesCtr {
    fn kind(&self) -> CipherKind {
        CipherKind::Stream
    }

    fn overhead(&self) -> usize {
        BLOCK
    }

    fn message_len(&self, plaintext_len: usize) -> usize {
        plaintext_len + BLOCK
    }

    fn seal(&self, sequence: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_into(sequence, plaintext, &mut out);
        out
    }

    fn open(&self, message: &[u8]) -> Result<Vec<u8>, OpenError> {
        let mut out = Vec::new();
        self.open_into(message, &mut out)?;
        Ok(out)
    }

    fn seal_into(&self, sequence: u64, plaintext: &[u8], out: &mut Vec<u8>) {
        let iv = Self::iv_for(sequence);
        out.clear();
        out.reserve(plaintext.len() + BLOCK);
        out.extend_from_slice(&iv);
        out.extend_from_slice(plaintext);
        let (_, body) = out.split_at_mut(BLOCK);
        self.keystream_xor(&iv, body);
    }

    fn open_into(&self, message: &[u8], out: &mut Vec<u8>) -> Result<(), OpenError> {
        if message.len() < BLOCK {
            return Err(OpenError::Truncated {
                len: message.len(),
                min: BLOCK,
            });
        }
        let iv: [u8; 16] = message[..BLOCK].try_into().expect("checked length");
        out.clear();
        out.extend_from_slice(&message[BLOCK..]);
        self.keystream_xor(&iv, out);
        Ok(())
    }

    fn sequence_of(&self, message: &[u8]) -> Option<u64> {
        let bytes: [u8; 8] = message.get(..8)?.try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }
}

/// AES-128 in CBC mode with PKCS#7 padding: message framing is
/// `IV (16 bytes) || ciphertext` where the ciphertext is the plaintext padded
/// up to the next 16-byte multiple (a full extra block when already aligned).
#[derive(Debug, Clone)]
pub struct AesCbc {
    aes: Aes128,
}

impl AesCbc {
    /// Creates a CBC-mode cipher from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        AesCbc {
            aes: Aes128::new(key),
        }
    }
}

impl Cipher for AesCbc {
    fn kind(&self) -> CipherKind {
        CipherKind::Block
    }

    fn overhead(&self) -> usize {
        BLOCK
    }

    fn message_len(&self, plaintext_len: usize) -> usize {
        // PKCS#7 always adds 1..=16 bytes of padding.
        let padded = (plaintext_len / BLOCK + 1) * BLOCK;
        padded + BLOCK
    }

    fn seal(&self, sequence: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_into(sequence, plaintext, &mut out);
        out
    }

    fn open(&self, message: &[u8]) -> Result<Vec<u8>, OpenError> {
        let mut out = Vec::new();
        self.open_into(message, &mut out)?;
        Ok(out)
    }

    fn seal_into(&self, sequence: u64, plaintext: &[u8], out: &mut Vec<u8>) {
        let iv = AesCtr::iv_for(sequence);
        out.clear();
        out.reserve(self.message_len(plaintext.len()));
        out.extend_from_slice(&iv);
        let mut prev = iv;
        let encrypt = |block: [u8; 16], prev: &mut [u8; 16], out: &mut Vec<u8>| {
            let mut mixed = block;
            for i in 0..BLOCK {
                mixed[i] ^= prev[i];
            }
            let ct = self.aes.encrypt_block(mixed);
            out.extend_from_slice(&ct);
            *prev = ct;
        };
        let mut chunks = plaintext.chunks_exact(BLOCK);
        for chunk in chunks.by_ref() {
            encrypt(chunk.try_into().expect("16-byte chunk"), &mut prev, out);
        }
        // PKCS#7: pad the tail in a stack block instead of building a padded
        // copy of the whole plaintext (a full extra block when aligned).
        let rest = chunks.remainder();
        let pad = BLOCK - rest.len();
        let mut block = [pad as u8; 16];
        block[..rest.len()].copy_from_slice(rest);
        encrypt(block, &mut prev, out);
    }

    fn open_into(&self, message: &[u8], out: &mut Vec<u8>) -> Result<(), OpenError> {
        if message.len() < 2 * BLOCK {
            return Err(OpenError::Truncated {
                len: message.len(),
                min: 2 * BLOCK,
            });
        }
        let body = &message[BLOCK..];
        if !body.len().is_multiple_of(BLOCK) {
            return Err(OpenError::Misaligned {
                len: body.len(),
                block: BLOCK,
            });
        }
        let mut prev: [u8; 16] = message[..BLOCK].try_into().expect("checked length");
        out.clear();
        out.reserve(body.len());
        for chunk in body.chunks(BLOCK) {
            let ct: [u8; 16] = chunk.try_into().expect("exact chunks");
            let mut block = self.aes.decrypt_block(ct);
            for i in 0..BLOCK {
                block[i] ^= prev[i];
            }
            out.extend_from_slice(&block);
            prev = ct;
        }
        let pad = *out.last().expect("non-empty plaintext") as usize;
        if pad == 0 || pad > BLOCK || pad > out.len() {
            return Err(OpenError::BadPadding);
        }
        if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
            return Err(OpenError::BadPadding);
        }
        out.truncate(out.len() - pad);
        Ok(())
    }

    fn sequence_of(&self, message: &[u8]) -> Option<u64> {
        let bytes: [u8; 8] = message.get(..8)?.try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_matches_known_entries() {
        let s = sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7c);
        assert_eq!(s[0x53], 0xed);
        assert_eq!(s[0xff], 0x16);
        let inv = inv_sbox();
        assert_eq!(inv[0x63], 0x00);
        for i in 0..256 {
            assert_eq!(inv[s[i] as usize] as usize, i);
        }
    }

    /// FIPS-197 Appendix B example.
    #[test]
    fn encrypt_block_matches_fips_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plaintext = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(plaintext), expected);
        assert_eq!(aes.decrypt_block(expected), plaintext);
    }

    /// FIPS-197 Appendix C.1 example.
    #[test]
    fn encrypt_block_matches_appendix_c() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let plaintext: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(plaintext), expected);
        assert_eq!(aes.decrypt_block(expected), plaintext);
    }

    #[test]
    fn ctr_roundtrip_and_framing() {
        let cipher = AesCtr::new([3; 16]);
        for len in [0usize, 1, 15, 16, 17, 333] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 13) as u8).collect();
            let sealed = cipher.seal(len as u64, &plaintext);
            assert_eq!(sealed.len(), cipher.message_len(len));
            assert_eq!(sealed.len(), len + 16);
            assert_eq!(cipher.open(&sealed).unwrap(), plaintext);
        }
    }

    #[test]
    fn cbc_roundtrip_and_framing() {
        let cipher = AesCbc::new([5; 16]);
        for len in [0usize, 1, 15, 16, 17, 32, 100] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
            let sealed = cipher.seal(len as u64, &plaintext);
            assert_eq!(sealed.len(), cipher.message_len(len));
            // IV + padded body (next multiple of 16, full block when aligned).
            assert_eq!(sealed.len(), 16 + (len / 16 + 1) * 16);
            assert_eq!(cipher.open(&sealed).unwrap(), plaintext);
        }
    }

    #[test]
    fn cbc_same_length_plaintexts_give_same_length_messages() {
        // The security property AGE relies on: equal plaintext lengths =>
        // equal message lengths, regardless of content.
        let cipher = AesCbc::new([7; 16]);
        let a = cipher.seal(1, &[0u8; 200]);
        let b = cipher.seal(2, &[0xFFu8; 200]);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn open_rejects_malformed_messages() {
        let cbc = AesCbc::new([1; 16]);
        assert!(matches!(
            cbc.open(&[0u8; 16]),
            Err(OpenError::Truncated { .. })
        ));
        assert!(matches!(
            cbc.open(&[0u8; 40]),
            Err(OpenError::Misaligned { .. })
        ));
        let ctr = AesCtr::new([1; 16]);
        assert!(matches!(
            ctr.open(&[0u8; 4]),
            Err(OpenError::Truncated { .. })
        ));
        // Corrupt padding: decrypt random blocks.
        let garbage = vec![0xA5u8; 48];
        assert!(matches!(
            cbc.open(&garbage),
            Err(OpenError::BadPadding) | Ok(_)
        ));
    }

    #[test]
    fn gf_arithmetic_known_values() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inverse(a)), 1, "inverse of {a}");
        }
    }
}
