//! Encryption substrate for the AGE sensor pipeline.
//!
//! The paper's simulator encrypts batched messages with a ChaCha20 stream
//! cipher (IETF RFC 7539) and the microcontroller deployment uses AES-128
//! (FIPS-197). Both are implemented here from scratch, together with a
//! [`Cipher`] abstraction that reports the exact on-air message length for a
//! given plaintext length — the quantity the side-channel attacker observes.
//!
//! AGE only needs two properties from this layer (§4.5 of the paper):
//!
//! 1. The ciphertext length must be a deterministic function of the
//!    plaintext length (stream: `len + nonce`; block: padded to the block
//!    size plus an IV), so that fixed-length plaintexts yield fixed-length
//!    messages.
//! 2. The framing overhead must be known so AGE can subtract it from the
//!    space available for measurement data.
//!
//! # Examples
//!
//! ```
//! use age_crypto::{ChaCha20, Cipher};
//!
//! let cipher = ChaCha20::new([7u8; 32]);
//! let sealed = cipher.seal(42, b"batch bytes");
//! assert_eq!(sealed.len(), cipher.message_len(11));
//! let opened = cipher.open(&sealed).expect("framing is valid");
//! assert_eq!(opened, b"batch bytes");
//! ```

mod aead;
mod aes;
mod chacha20;
mod cipher;
pub mod kdf;
mod poly1305;

pub use aead::ChaCha20Poly1305;
pub use aes::{Aes128, AesCbc, AesCtr};
pub use chacha20::{chacha20_block, ChaCha20};
pub use cipher::{Cipher, CipherKind, OpenError};
pub use kdf::EpochRatchet;
pub use poly1305::{poly1305, tags_equal, Poly1305};
