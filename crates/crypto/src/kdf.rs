//! HKDF-style key derivation and the per-epoch key ratchet.
//!
//! A deployed sensor outlives one key: sequence space is finite and a
//! captured device must not expose traffic it sealed months earlier. This
//! module builds the key lifecycle from the primitives the workspace
//! already trusts — no hash function is imported; the one-way compression
//! step is the bare 20-round ChaCha permutation with half its output
//! discarded (the HChaCha20 construction), keyed like a PRF.
//!
//! Three layers, mirroring HKDF's shape (RFC 5869):
//!
//! 1. [`hchacha20`] — the PRF core: 32-byte key + 16-byte input → 32-byte
//!    output. One ChaCha permutation, no feed-forward, output words 0..4
//!    and 12..16. Discarding half the state is what makes it one-way.
//! 2. [`extract`] / [`expand`] — extract condenses (salt, input keying
//!    material) into a 32-byte PRK by absorbing domain-tagged 14-byte
//!    blocks through an iterated PRF chain; expand stretches a PRK into up
//!    to 255 × 32 bytes of output keyed by an info string, HKDF-style
//!    (every output block is re-keyed by the PRK, so holding one block
//!    never yields the next).
//! 3. [`EpochRatchet`] — the forward-secure chain: each epoch's AEAD key
//!    is derived from the chain value under one label, and advancing the
//!    ratchet replaces the chain with its image under another label. The
//!    chain step is one-way, so epoch `e`'s key is unrecoverable from any
//!    state held at epoch `e + 1` — compromise discloses the future, never
//!    the past.
//!
//! Per-sensor roots come from [`sensor_root`], which walks the same
//! extract/expand path from a fleet master secret ([`fleet_secret`] for
//! the simulator's integer seeds), so any two distinct `(sensor, epoch)`
//! pairs land on independent keys.
//!
//! # Examples
//!
//! ```
//! use age_crypto::kdf::{fleet_secret, sensor_root, EpochRatchet};
//!
//! let root = sensor_root(&fleet_secret(2022), 7);
//! let mut sensor = EpochRatchet::new(root);
//! let mut receiver = EpochRatchet::new(root);
//! let k0 = sensor.key();
//! sensor.advance();
//! receiver.seek(sensor.epoch());
//! assert_eq!(sensor.key(), receiver.key());
//! assert_ne!(sensor.key(), k0);
//! ```

use crate::chacha20::{base_state, permuted_words};

/// Domain-separation tags for the absorb phases. Each tagged block is
/// unambiguous: a tag switch marks a field boundary, so `extract("ab", "c")`
/// and `extract("a", "bc")` absorb different block sequences.
const DOMAIN_SALT: u8 = 0x01;
const DOMAIN_IKM: u8 = 0x02;
const DOMAIN_PREV: u8 = 0x03;
const DOMAIN_INFO: u8 = 0x04;
const DOMAIN_BLOCK: u8 = 0x05;

/// Payload bytes carried per absorbed block (16-byte block minus the
/// domain tag and the length byte).
const CHUNK: usize = 14;

/// Longest output `expand` can produce: 255 blocks of 32 bytes, matching
/// HKDF's `255 * HashLen` ceiling.
pub const MAX_OKM_LEN: usize = 255 * 32;

/// The HChaCha20 PRF core: 20 ChaCha rounds over (constants ‖ key ‖
/// input) with **no** feed-forward addition, returning state words 0..4
/// and 12..16 serialized little-endian.
///
/// This is the subkey-derivation function from the XChaCha construction
/// (draft-irtf-cfrg-xchacha §2.2): the permutation is public, but with the
/// middle half of the output discarded, recovering the key from the output
/// requires inverting a truncated permutation — the same hardness the
/// ChaCha20 block function itself rests on.
pub fn hchacha20(key: &[u8; 32], input: &[u8; 16]) -> [u8; 32] {
    let counter = u32::from_le_bytes(input[0..4].try_into().expect("4-byte chunk"));
    let nonce: [u8; 12] = input[4..16].try_into().expect("12-byte tail");
    let words = permuted_words(&base_state(key, counter, &nonce));
    let mut out = [0u8; 32];
    for (i, bytes) in out.chunks_exact_mut(4).enumerate() {
        let word = if i < 4 { words[i] } else { words[8 + i] };
        bytes.copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Absorbs `data` into the chain under `domain`, one tagged 14-byte chunk
/// per PRF call. Empty input still absorbs one zero-length block so field
/// boundaries survive in the transcript.
fn absorb(mut chain: [u8; 32], domain: u8, data: &[u8]) -> [u8; 32] {
    let mut block = [0u8; 16];
    let mut chunks = data.chunks(CHUNK);
    loop {
        let chunk = chunks.next().unwrap_or(&[]);
        block[0] = domain;
        block[1] = chunk.len() as u8;
        block[2..2 + chunk.len()].copy_from_slice(chunk);
        block[2 + chunk.len()..].fill(0);
        chain = hchacha20(&chain, &block);
        if chunk.len() < CHUNK {
            break;
        }
    }
    chain
}

/// Condenses `(salt, ikm)` into a 32-byte pseudorandom key.
///
/// The HKDF-Extract analogue: the chain starts at zero, absorbs the salt,
/// then the input keying material, each under its own domain tag. The
/// result is suitable as the `prk` input to [`expand`].
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    absorb(absorb([0u8; 32], DOMAIN_SALT, salt), DOMAIN_IKM, ikm)
}

/// Stretches `prk` into `okm.len()` bytes of output keyed by `info`.
///
/// The HKDF-Expand analogue: block `i` is
/// `PRF*(prk, T(i-1) ‖ info ‖ i)` — every block is re-keyed from the PRK,
/// so possession of output blocks alone never yields another block.
/// `okm` longer than [`MAX_OKM_LEN`] is truncated to that ceiling (the
/// excess is left untouched); callers in this workspace only ever ask for
/// 32 bytes.
pub fn expand(prk: &[u8; 32], info: &[u8], okm: &mut [u8]) {
    let len = okm.len().min(MAX_OKM_LEN);
    let mut previous = [0u8; 32];
    for (index, chunk) in okm[..len].chunks_mut(32).enumerate() {
        let mut chain = absorb(*prk, DOMAIN_PREV, if index == 0 { &[] } else { &previous });
        chain = absorb(chain, DOMAIN_INFO, info);
        previous = hchacha20(&chain, &{
            let mut block = [0u8; 16];
            block[0] = DOMAIN_BLOCK;
            block[1] = (index + 1) as u8;
            block
        });
        chunk.copy_from_slice(&previous[..chunk.len()]);
    }
}

/// One extract-free `expand` to a 32-byte key — the common case.
pub fn derive_key32(prk: &[u8; 32], info: &[u8]) -> [u8; 32] {
    let mut key = [0u8; 32];
    expand(prk, info, &mut key);
    key
}

/// Expands a simulator-style integer seed into a fleet master secret.
///
/// Real deployments provision the master secret out of band; the
/// simulator's fleets are keyed by a `u64` seed, so this is the bridge.
pub fn fleet_secret(seed: u64) -> [u8; 32] {
    extract(b"age/v1/fleet-secret", &seed.to_le_bytes())
}

/// Derives the per-sensor root key a ratchet starts from.
pub fn sensor_root(fleet_secret: &[u8; 32], sensor_id: u64) -> [u8; 32] {
    let prk = extract(b"age/v1/sensor-root", fleet_secret);
    let mut info = [0u8; 8];
    info.copy_from_slice(&sensor_id.to_le_bytes());
    let mut root = [0u8; 32];
    expand(&prk, &info, &mut root);
    root
}

/// Info label under which an epoch's AEAD key is derived from the chain.
const EPOCH_KEY_INFO: &[u8] = b"age/v1/epoch-key";
/// Info label under which the chain steps to the next epoch.
const CHAIN_STEP_INFO: &[u8] = b"age/v1/chain-step";

/// The forward-secure epoch chain.
///
/// The chain value at epoch `e` yields (a) epoch `e`'s AEAD key, under
/// the `age/v1/epoch-key` label, and (b) the chain value at epoch `e + 1`,
/// under `age/v1/chain-step`. The two labels are distinct, so an epoch key never
/// reveals the chain, and the chain step is one-way, so advancing destroys
/// the ability to recompute any earlier epoch's key.
///
/// The ratchet only moves forward: [`seek`](EpochRatchet::advance) walks
/// the chain toward a later epoch; there is deliberately no way back.
#[derive(Clone)]
pub struct EpochRatchet {
    chain: [u8; 32],
    epoch: u64,
}

impl EpochRatchet {
    /// A ratchet at epoch 0, chained from `root`.
    pub fn new(root: [u8; 32]) -> EpochRatchet {
        EpochRatchet {
            chain: root,
            epoch: 0,
        }
    }

    /// A ratchet wound forward to `epoch` (a fresh chain walked from the
    /// root — the cost is one chain step per epoch skipped).
    pub fn at_epoch(root: [u8; 32], epoch: u64) -> EpochRatchet {
        let mut ratchet = EpochRatchet::new(root);
        ratchet.seek(epoch);
        ratchet
    }

    /// The epoch this ratchet currently sits at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The AEAD key for the current epoch.
    pub fn key(&self) -> [u8; 32] {
        derive_key32(&self.chain, EPOCH_KEY_INFO)
    }

    /// Steps to the next epoch, overwriting the chain with its one-way
    /// image: after this returns, the previous epoch's key can no longer
    /// be derived from this ratchet.
    pub fn advance(&mut self) {
        self.chain = derive_key32(&self.chain, CHAIN_STEP_INFO);
        self.epoch += 1;
    }

    /// Advances until the ratchet sits at `epoch`. A target at or behind
    /// the current epoch is a no-op — the chain cannot rewind.
    pub fn seek(&mut self, epoch: u64) {
        while self.epoch < epoch {
            self.advance();
        }
    }
}

/// The chain value is key material; `Debug` deliberately shows only the
/// epoch so ratchets can appear in logs and assert messages safely.
impl core::fmt::Debug for EpochRatchet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EpochRatchet")
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_separates_field_boundaries() {
        // Same concatenated bytes, different (salt, ikm) split.
        assert_ne!(extract(b"ab", b"c"), extract(b"a", b"bc"));
        assert_ne!(extract(b"", b"abc"), extract(b"abc", b""));
    }

    #[test]
    fn expand_blocks_are_position_dependent() {
        let prk = extract(b"salt", b"ikm");
        let mut okm = [0u8; 96];
        expand(&prk, b"info", &mut okm);
        assert_ne!(okm[0..32], okm[32..64]);
        assert_ne!(okm[32..64], okm[64..96]);
        // A shorter request is a prefix of a longer one.
        let mut short = [0u8; 40];
        expand(&prk, b"info", &mut short);
        assert_eq!(short[..], okm[..40]);
    }

    #[test]
    fn expand_depends_on_info() {
        let prk = extract(b"salt", b"ikm");
        assert_ne!(derive_key32(&prk, b"a"), derive_key32(&prk, b"b"));
        assert_ne!(derive_key32(&prk, b""), derive_key32(&prk, b"a"));
    }

    #[test]
    fn ratchet_is_forward_only_and_deterministic() {
        let root = sensor_root(&fleet_secret(1), 9);
        let mut a = EpochRatchet::new(root);
        let k0 = a.key();
        a.advance();
        a.advance();
        assert_eq!(a.epoch(), 2);
        assert_eq!(a.key(), EpochRatchet::at_epoch(root, 2).key());
        assert_ne!(a.key(), k0);
        // Seeking backward is a no-op, not a rewind.
        a.seek(1);
        assert_eq!(a.epoch(), 2);
    }

    #[test]
    fn epoch_key_differs_from_chain_step() {
        // The two labels must not collide: if the epoch key equalled the
        // next chain value, publishing a key would unzip the ratchet.
        let mut r = EpochRatchet::new([7u8; 32]);
        let key = r.key();
        r.advance();
        assert_ne!(key, r.chain);
        assert_ne!(key, r.key());
    }

    #[test]
    fn debug_hides_the_chain() {
        let r = EpochRatchet::at_epoch([3u8; 32], 5);
        let shown = format!("{r:?}");
        assert!(shown.contains("epoch: 5"));
        assert!(!shown.contains("chain"));
    }
}
