//! Poly1305 one-time authenticator (RFC 7539 §2.5).
//!
//! Implemented with five 26-bit limbs so all products fit in `u64` — the
//! classic portable construction. The incremental [`Poly1305`] state lets
//! [`crate::ChaCha20Poly1305`] authenticate the RFC transcript
//! (`ciphertext || pad || lengths`) piecewise without assembling it in a
//! heap buffer; a forged or corrupted message is rejected before decoding.

/// Incremental Poly1305 state: feed the message with [`Poly1305::update`]
/// in arbitrary pieces, then consume with [`Poly1305::finalize`].
///
/// Equivalent to the one-shot [`poly1305`] over the concatenated input.
///
/// # Examples
///
/// ```
/// use age_crypto::{poly1305, Poly1305};
///
/// let key = [7u8; 32];
/// let mut mac = Poly1305::new(&key);
/// mac.update(b"split ");
/// mac.update(b"message");
/// assert_eq!(mac.finalize(), poly1305(&key, b"split message"));
/// ```
#[derive(Debug, Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 5],
    h: [u32; 5],
    pad: u128,
    buffer: [u8; 16],
    buffered: usize,
}

impl Poly1305 {
    /// Starts a MAC computation under a 32-byte one-time key.
    pub fn new(key: &[u8; 32]) -> Self {
        // r is clamped per the RFC.
        let mut r_bytes = [0u8; 16];
        r_bytes.copy_from_slice(&key[..16]);
        r_bytes[3] &= 15;
        r_bytes[7] &= 15;
        r_bytes[11] &= 15;
        r_bytes[15] &= 15;
        r_bytes[4] &= 252;
        r_bytes[8] &= 252;
        r_bytes[12] &= 252;

        let le32 = |b: &[u8]| -> u32 { u32::from_le_bytes(b.try_into().expect("4 bytes")) };

        // Five 26-bit limbs of r, plus the 5·r folding terms.
        let r = [
            le32(&r_bytes[0..4]) & 0x3ff_ffff,
            (le32(&r_bytes[3..7]) >> 2) & 0x3ff_ff03,
            (le32(&r_bytes[6..10]) >> 4) & 0x3ff_c0ff,
            (le32(&r_bytes[9..13]) >> 6) & 0x3f0_3fff,
            (le32(&r_bytes[12..16]) >> 8) & 0x00f_ffff,
        ];
        Poly1305 {
            r,
            s: [0, r[1] * 5, r[2] * 5, r[3] * 5, r[4] * 5],
            h: [0; 5],
            pad: u128::from_le_bytes(key[16..32].try_into().expect("16 bytes")),
            buffer: [0u8; 16],
            buffered: 0,
        }
    }

    /// Absorbs one 16-byte block; `hibit` is 1 for full message blocks and
    /// 0 for the final padded partial block (whose padding bit sits inside
    /// the 16 bytes).
    fn process(&mut self, block: &[u8; 16], hibit: u32) {
        let [r0, r1, r2, r3, r4] = self.r;
        let [_, s1, s2, s3, s4] = self.s;
        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;

        // Add the block (with its high bit) to the accumulator.
        let t0 = u32::from_le_bytes(block[0..4].try_into().expect("4 bytes"));
        let t1 = u32::from_le_bytes(block[3..7].try_into().expect("4 bytes"));
        let t2 = u32::from_le_bytes(block[6..10].try_into().expect("4 bytes"));
        let t3 = u32::from_le_bytes(block[9..13].try_into().expect("4 bytes"));
        let t4 = u32::from_le_bytes(block[12..16].try_into().expect("4 bytes"));
        h0 = h0.wrapping_add(t0 & 0x3ff_ffff);
        h1 = h1.wrapping_add((t1 >> 2) & 0x3ff_ffff);
        h2 = h2.wrapping_add((t2 >> 4) & 0x3ff_ffff);
        h3 = h3.wrapping_add((t3 >> 6) & 0x3ff_ffff);
        h4 = h4.wrapping_add((t4 >> 8) | (hibit << 24));

        // h *= r (mod 2^130 - 5), schoolbook with 5·x folding.
        let d0 = u64::from(h0) * u64::from(r0)
            + u64::from(h1) * u64::from(s4)
            + u64::from(h2) * u64::from(s3)
            + u64::from(h3) * u64::from(s2)
            + u64::from(h4) * u64::from(s1);
        let mut d1 = u64::from(h0) * u64::from(r1)
            + u64::from(h1) * u64::from(r0)
            + u64::from(h2) * u64::from(s4)
            + u64::from(h3) * u64::from(s3)
            + u64::from(h4) * u64::from(s2);
        let mut d2 = u64::from(h0) * u64::from(r2)
            + u64::from(h1) * u64::from(r1)
            + u64::from(h2) * u64::from(r0)
            + u64::from(h3) * u64::from(s4)
            + u64::from(h4) * u64::from(s3);
        let mut d3 = u64::from(h0) * u64::from(r3)
            + u64::from(h1) * u64::from(r2)
            + u64::from(h2) * u64::from(r1)
            + u64::from(h3) * u64::from(r0)
            + u64::from(h4) * u64::from(s4);
        let mut d4 = u64::from(h0) * u64::from(r4)
            + u64::from(h1) * u64::from(r3)
            + u64::from(h2) * u64::from(r2)
            + u64::from(h3) * u64::from(r1)
            + u64::from(h4) * u64::from(r0);

        // Carry propagation.
        let mut c = (d0 >> 26) as u32;
        h0 = (d0 & 0x3ff_ffff) as u32;
        d1 += u64::from(c);
        c = (d1 >> 26) as u32;
        h1 = (d1 & 0x3ff_ffff) as u32;
        d2 += u64::from(c);
        c = (d2 >> 26) as u32;
        h2 = (d2 & 0x3ff_ffff) as u32;
        d3 += u64::from(c);
        c = (d3 >> 26) as u32;
        h3 = (d3 & 0x3ff_ffff) as u32;
        d4 += u64::from(c);
        c = (d4 >> 26) as u32;
        h4 = (d4 & 0x3ff_ffff) as u32;
        h0 += c * 5;
        let c2 = h0 >> 26;
        h0 &= 0x3ff_ffff;
        h1 += c2;

        self.h = [h0, h1, h2, h3, h4];
    }

    /// Feeds message bytes into the MAC.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffered > 0 {
            let want = (16 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + want].copy_from_slice(&data[..want]);
            self.buffered += want;
            data = &data[want..];
            if self.buffered < 16 {
                return;
            }
            let block = self.buffer;
            self.process(&block, 1);
            self.buffered = 0;
        }
        let mut chunks = data.chunks_exact(16);
        for chunk in chunks.by_ref() {
            self.process(chunk.try_into().expect("16-byte chunk"), 1);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    /// Completes the computation and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buffered > 0 {
            let mut block = [0u8; 16];
            block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
            block[self.buffered] = 1; // padding bit inside the 16-byte window
            self.process(&block, 0);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;

        // Final reduction: h mod 2^130 - 5.
        let mut c = h1 >> 26;
        h1 &= 0x3ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x3ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x3ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x3ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x3ff_ffff;
        h1 += c;

        // Compute h + -p and select.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x3ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x3ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x3ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x3ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        if g4 >> 31 == 0 {
            h0 = g0;
            h1 = g1;
            h2 = g2;
            h3 = g3;
            h4 = g4;
        }

        // Serialize h and add s = key[16..32] (mod 2^128).
        let h_low = u128::from(h0)
            | (u128::from(h1) << 26)
            | (u128::from(h2) << 52)
            | (u128::from(h3) << 78)
            | (u128::from(h4) << 104);
        h_low.wrapping_add(self.pad).to_le_bytes()
    }
}

/// Computes the Poly1305 tag of `message` under a 32-byte one-time key.
///
/// # Examples
///
/// ```
/// use age_crypto::poly1305;
///
/// let tag = poly1305(&[0u8; 32], b"anything");
/// assert_eq!(tag, [0u8; 16]); // zero key gives a zero tag
/// ```
pub fn poly1305(key: &[u8; 32], message: &[u8]) -> [u8; 16] {
    let mut mac = Poly1305::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time tag comparison (bitwise OR of differences).
pub fn tags_equal(a: &[u8; 16], b: &[u8; 16]) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.5.2 test vector.
    #[test]
    fn rfc_vector() {
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let message = b"Cryptographic Forum Research Group";
        let expected = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(poly1305(&key, message), expected);
    }

    #[test]
    fn zero_key_zero_tag() {
        assert_eq!(poly1305(&[0u8; 32], b"any message at all"), [0u8; 16]);
    }

    #[test]
    fn tag_depends_on_every_byte() {
        let key = [7u8; 32];
        let base = poly1305(&key, b"hello world sensor batch");
        let mut altered = *b"hello world sensor batch";
        altered[3] ^= 1;
        assert_ne!(poly1305(&key, &altered), base);
    }

    #[test]
    fn empty_and_partial_blocks() {
        let key = [9u8; 32];
        // Must not panic and must differ across lengths.
        let tags: Vec<[u8; 16]> = (0..40).map(|n| poly1305(&key, &vec![0xAA; n])).collect();
        for w in tags.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn incremental_updates_match_one_shot_for_every_split() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 37 + 11) as u8);
        let message: Vec<u8> = (0..75).map(|i| (i * 29 + 3) as u8).collect();
        let expected = poly1305(&key, &message);
        // Every two-piece split, including empty pieces.
        for cut in 0..=message.len() {
            let mut mac = Poly1305::new(&key);
            mac.update(&message[..cut]);
            mac.update(&message[cut..]);
            assert_eq!(mac.finalize(), expected, "split at {cut}");
        }
        // Byte-at-a-time.
        let mut mac = Poly1305::new(&key);
        for &byte in &message {
            mac.update(&[byte]);
        }
        assert_eq!(mac.finalize(), expected);
        // Three uneven pieces crossing block boundaries.
        let mut mac = Poly1305::new(&key);
        mac.update(&message[..7]);
        mac.update(&message[7..40]);
        mac.update(&message[40..]);
        assert_eq!(mac.finalize(), expected);
    }

    #[test]
    fn constant_time_compare() {
        let a = [1u8; 16];
        let mut b = a;
        assert!(tags_equal(&a, &b));
        b[15] ^= 0x80;
        assert!(!tags_equal(&a, &b));
    }
}
