//! ChaCha20-Poly1305 AEAD (RFC 7539 §2.8).
//!
//! The full authenticated construction: the one-time Poly1305 key comes
//! from ChaCha20 block 0, the payload is encrypted with counter 1, and the
//! tag covers `aad || pad || ciphertext || pad || len(aad) || len(ct)`.
//! Message framing: `nonce (12) || ciphertext || tag (16)` — 28 bytes of
//! constant overhead, so AGE's fixed-length property passes through intact.

use crate::chacha20::{chacha20_block, ChaCha20};
use crate::cipher::{Cipher, CipherKind, OpenError};
use crate::poly1305::{tags_equal, Poly1305};

const NONCE_LEN: usize = 12;
const TAG_LEN: usize = 16;

/// The RFC 7539 AEAD: ChaCha20 encryption with a Poly1305 tag.
///
/// # Examples
///
/// ```
/// use age_crypto::{ChaCha20Poly1305, Cipher};
///
/// let aead = ChaCha20Poly1305::new([9u8; 32]);
/// let sealed = aead.seal(5, b"batch");
/// assert_eq!(sealed.len(), 5 + 12 + 16);
/// assert_eq!(aead.open(&sealed).unwrap(), b"batch");
///
/// // Any corruption is detected.
/// let mut forged = sealed.clone();
/// forged[14] ^= 1;
/// assert!(aead.open(&forged).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; 32],
}

impl ChaCha20Poly1305 {
    /// Creates an AEAD with a 256-bit key.
    pub fn new(key: [u8; 32]) -> Self {
        ChaCha20Poly1305 { key }
    }

    /// Derives the one-time Poly1305 key (RFC 7539 §2.6): the first 32
    /// bytes of ChaCha20 block 0.
    fn poly_key(&self, nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
        let block = chacha20_block(&self.key, 0, nonce);
        let mut key = [0u8; 32];
        key.copy_from_slice(&block[..32]);
        key
    }

    /// Tags the authenticated transcript `ciphertext || pad || len(aad) ||
    /// len(ct)` by streaming it into an incremental [`Poly1305`], so no heap
    /// copy of the transcript is ever built (the AAD is empty here — the
    /// sensor protocol has no unencrypted header besides the nonce).
    fn mac(&self, nonce: &[u8; NONCE_LEN], ciphertext: &[u8]) -> [u8; 16] {
        let mut mac = Poly1305::new(&self.poly_key(nonce));
        mac.update(ciphertext);
        let zeros = [0u8; 16];
        mac.update(&zeros[..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&0u64.to_le_bytes()); // aad length
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    fn nonce_for(sequence: u64) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[4..].copy_from_slice(&sequence.to_le_bytes());
        nonce
    }
}

impl Cipher for ChaCha20Poly1305 {
    fn kind(&self) -> CipherKind {
        CipherKind::Stream
    }

    fn overhead(&self) -> usize {
        NONCE_LEN + TAG_LEN
    }

    fn message_len(&self, plaintext_len: usize) -> usize {
        plaintext_len + NONCE_LEN + TAG_LEN
    }

    fn seal(&self, sequence: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_into(sequence, plaintext, &mut out);
        out
    }

    fn open(&self, message: &[u8]) -> Result<Vec<u8>, OpenError> {
        let mut out = Vec::new();
        self.open_into(message, &mut out)?;
        Ok(out)
    }

    fn seal_into(&self, sequence: u64, plaintext: &[u8], out: &mut Vec<u8>) {
        let nonce = Self::nonce_for(sequence);
        out.clear();
        out.reserve(self.message_len(plaintext.len()));
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        {
            let (_, body) = out.split_at_mut(NONCE_LEN);
            // RFC 7539 §2.8: payload uses counter 1.
            ChaCha20::new(self.key).apply_keystream(&nonce, 1, body);
        }
        let tag = self.mac(&nonce, &out[NONCE_LEN..]);
        out.extend_from_slice(&tag);
    }

    fn open_into(&self, message: &[u8], out: &mut Vec<u8>) -> Result<(), OpenError> {
        if message.len() < NONCE_LEN + TAG_LEN {
            return Err(OpenError::Truncated {
                len: message.len(),
                min: NONCE_LEN + TAG_LEN,
            });
        }
        let nonce: [u8; NONCE_LEN] = message[..NONCE_LEN].try_into().expect("checked length");
        let (body, tag_bytes) = message[NONCE_LEN..].split_at(message.len() - NONCE_LEN - TAG_LEN);
        let expected = self.mac(&nonce, body);
        let tag: [u8; 16] = tag_bytes.try_into().expect("16-byte tag");
        if !tags_equal(&expected, &tag) {
            return Err(OpenError::BadPadding); // authentication failure
        }
        out.clear();
        out.extend_from_slice(body);
        ChaCha20::new(self.key).apply_keystream(&nonce, 1, out);
        Ok(())
    }

    fn sequence_of(&self, message: &[u8]) -> Option<u64> {
        let bytes: [u8; 8] = message.get(4..NONCE_LEN)?.try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.6.2 Poly1305 key-generation test vector.
    #[test]
    fn rfc_keystream_and_poly_key() {
        let key: [u8; 32] = core::array::from_fn(|i| 0x80 + i as u8);
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
        ];
        let aead = ChaCha20Poly1305::new(key);
        let poly_key = aead.poly_key(&nonce);
        // RFC 7539 §2.6.2 one-time key vector.
        let expected: [u8; 32] = [
            0x8a, 0xd5, 0xa0, 0x8b, 0x90, 0x5f, 0x81, 0xcc, 0x81, 0x50, 0x40, 0x27, 0x4a, 0xb2,
            0x94, 0x71, 0xa8, 0x33, 0xb6, 0x37, 0xe3, 0xfd, 0x0d, 0xa5, 0x08, 0xdb, 0xb8, 0xe2,
            0xfd, 0xd1, 0xa6, 0x46,
        ];
        assert_eq!(poly_key, expected);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let aead = ChaCha20Poly1305::new([0x42; 32]);
        for len in [0usize, 1, 15, 16, 17, 64, 300] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 11) as u8).collect();
            let sealed = aead.seal(len as u64, &plaintext);
            assert_eq!(sealed.len(), aead.message_len(len));
            assert_eq!(aead.open(&sealed).unwrap(), plaintext);
        }
    }

    #[test]
    fn corruption_anywhere_is_detected() {
        let aead = ChaCha20Poly1305::new([0x42; 32]);
        let sealed = aead.seal(9, b"sensor batch contents");
        for i in 0..sealed.len() {
            let mut forged = sealed.clone();
            forged[i] ^= 0x01;
            assert!(
                aead.open(&forged).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn fixed_length_property_passes_through() {
        let aead = ChaCha20Poly1305::new([0x42; 32]);
        let a = aead.seal(1, &[0u8; 220]);
        let b = aead.seal(2, &[0xFFu8; 220]);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 220 + 28);
    }

    #[test]
    fn truncated_messages_rejected() {
        let aead = ChaCha20Poly1305::new([1; 32]);
        assert!(matches!(
            aead.open(&[0u8; 27]),
            Err(OpenError::Truncated { .. })
        ));
    }
}
