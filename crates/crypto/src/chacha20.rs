//! ChaCha20 stream cipher, RFC 7539 variant (96-bit nonce, 32-bit counter).

use crate::cipher::{Cipher, CipherKind, OpenError};

/// Size of the RFC 7539 nonce in bytes.
const NONCE_LEN: usize = 12;

/// The ChaCha20 stream cipher with RFC 7539 parameters.
///
/// Each sealed message is framed as `nonce (12 bytes) || ciphertext`, so the
/// on-air length is `plaintext length + 12`. The nonce is derived from the
/// caller-supplied message sequence number, which is how a sensor with no
/// entropy source keeps nonces unique.
///
/// # Examples
///
/// ```
/// use age_crypto::{ChaCha20, Cipher};
///
/// let cipher = ChaCha20::new([0u8; 32]);
/// let msg = cipher.seal(1, b"hello");
/// assert_eq!(msg.len(), 5 + 12);
/// assert_eq!(cipher.open(&msg).unwrap(), b"hello");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u8; 32],
}

impl ChaCha20 {
    /// Creates a cipher with a 256-bit key.
    pub fn new(key: [u8; 32]) -> Self {
        ChaCha20 { key }
    }

    /// Applies the keystream for (`key`, `nonce`, starting `counter`) to
    /// `data` in place. Encryption and decryption are the same operation.
    pub fn apply_keystream(&self, nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
        let mut block_counter = counter;
        for chunk in data.chunks_mut(64) {
            let keystream = chacha20_block(&self.key, block_counter, nonce);
            for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
            block_counter = block_counter.wrapping_add(1);
        }
    }

    fn nonce_for(&self, sequence: u64) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[4..].copy_from_slice(&sequence.to_le_bytes());
        nonce
    }
}

impl Cipher for ChaCha20 {
    fn kind(&self) -> CipherKind {
        CipherKind::Stream
    }

    fn overhead(&self) -> usize {
        NONCE_LEN
    }

    fn message_len(&self, plaintext_len: usize) -> usize {
        plaintext_len + NONCE_LEN
    }

    fn seal(&self, sequence: u64, plaintext: &[u8]) -> Vec<u8> {
        let nonce = self.nonce_for(sequence);
        let mut out = Vec::with_capacity(plaintext.len() + NONCE_LEN);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        // RFC 7539 uses counter 1 for the first data block in AEAD; as a raw
        // stream cipher we start at 0.
        let (nonce_bytes, body) = out.split_at_mut(NONCE_LEN);
        let nonce_arr: [u8; NONCE_LEN] = nonce_bytes.try_into().expect("split at NONCE_LEN");
        self.apply_keystream(&nonce_arr, 0, body);
        out
    }

    fn open(&self, message: &[u8]) -> Result<Vec<u8>, OpenError> {
        if message.len() < NONCE_LEN {
            return Err(OpenError::Truncated {
                len: message.len(),
                min: NONCE_LEN,
            });
        }
        let nonce: [u8; NONCE_LEN] = message[..NONCE_LEN].try_into().expect("checked length");
        let mut body = message[NONCE_LEN..].to_vec();
        self.apply_keystream(&nonce, 0, &mut body);
        Ok(body)
    }

    fn sequence_of(&self, message: &[u8]) -> Option<u64> {
        let bytes: [u8; 8] = message.get(4..NONCE_LEN)?.try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }
}

/// Computes one 64-byte ChaCha20 keystream block (RFC 7539 §2.3).
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("key chunk"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] =
            u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("nonce chunk"));
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 test vector.
    #[test]
    fn block_function_matches_rfc_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    /// RFC 7539 §2.4.2 encryption test vector.
    #[test]
    fn encryption_matches_rfc_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        let cipher = ChaCha20::new(key);
        cipher.apply_keystream(&nonce, 1, &mut data);
        let expected_head = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        let expected_tail = [0x87, 0x4d];
        assert_eq!(&data[..16], &expected_head);
        assert_eq!(&data[data.len() - 2..], &expected_tail);
        // Round trips.
        cipher.apply_keystream(&nonce, 1, &mut data);
        assert_eq!(&data, plaintext);
    }

    #[test]
    fn seal_open_roundtrip() {
        let cipher = ChaCha20::new([0xAB; 32]);
        for len in [0usize, 1, 63, 64, 65, 300] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let sealed = cipher.seal(len as u64, &plaintext);
            assert_eq!(sealed.len(), len + 12);
            assert_eq!(cipher.open(&sealed).unwrap(), plaintext);
        }
    }

    #[test]
    fn distinct_sequences_produce_distinct_ciphertexts() {
        let cipher = ChaCha20::new([1; 32]);
        let a = cipher.seal(1, b"same plaintext");
        let b = cipher.seal(2, b"same plaintext");
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn open_rejects_truncated_message() {
        let cipher = ChaCha20::new([1; 32]);
        let err = cipher.open(&[0u8; 5]).unwrap_err();
        assert!(matches!(err, OpenError::Truncated { len: 5, min: 12 }));
    }

    #[test]
    fn message_len_is_linear_in_plaintext() {
        let cipher = ChaCha20::new([9; 32]);
        assert_eq!(cipher.message_len(0), 12);
        assert_eq!(cipher.message_len(100), 112);
        assert_eq!(cipher.overhead(), 12);
        assert_eq!(cipher.kind(), CipherKind::Stream);
    }
}
