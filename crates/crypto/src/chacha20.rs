//! ChaCha20 stream cipher, RFC 7539 variant (96-bit nonce, 32-bit counter).

use crate::cipher::{Cipher, CipherKind, OpenError};

/// Size of the RFC 7539 nonce in bytes.
const NONCE_LEN: usize = 12;

/// The ChaCha20 stream cipher with RFC 7539 parameters.
///
/// Each sealed message is framed as `nonce (12 bytes) || ciphertext`, so the
/// on-air length is `plaintext length + 12`. The nonce is derived from the
/// caller-supplied message sequence number, which is how a sensor with no
/// entropy source keeps nonces unique.
///
/// # Examples
///
/// ```
/// use age_crypto::{ChaCha20, Cipher};
///
/// let cipher = ChaCha20::new([0u8; 32]);
/// let msg = cipher.seal(1, b"hello");
/// assert_eq!(msg.len(), 5 + 12);
/// assert_eq!(cipher.open(&msg).unwrap(), b"hello");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u8; 32],
}

impl ChaCha20 {
    /// Creates a cipher with a 256-bit key.
    pub fn new(key: [u8; 32]) -> Self {
        ChaCha20 { key }
    }

    /// Applies the keystream for (`key`, `nonce`, starting `counter`) to
    /// `data` in place. Encryption and decryption are the same operation.
    ///
    /// The base state is assembled once per call and only word 12 (the block
    /// counter) changes between blocks, so a multi-block frame keeps the
    /// whole state in registers. Full 64-byte chunks XOR the keystream as
    /// sixteen `u32` words; only a trailing partial chunk goes through a
    /// serialized byte buffer.
    pub fn apply_keystream(&self, nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
        let mut state = base_state(&self.key, counter, nonce);
        let mut chunks = data.chunks_exact_mut(64);
        for chunk in chunks.by_ref() {
            let words = block_words(&state);
            for (bytes, word) in chunk.chunks_exact_mut(4).zip(words) {
                let mixed = u32::from_le_bytes(bytes.try_into().expect("4-byte chunk")) ^ word;
                bytes.copy_from_slice(&mixed.to_le_bytes());
            }
            state[12] = state[12].wrapping_add(1);
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let words = block_words(&state);
            let mut keystream = [0u8; 64];
            for (bytes, word) in keystream.chunks_exact_mut(4).zip(words) {
                bytes.copy_from_slice(&word.to_le_bytes());
            }
            for (byte, ks) in rest.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
        }
    }

    fn nonce_for(&self, sequence: u64) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[4..].copy_from_slice(&sequence.to_le_bytes());
        nonce
    }
}

impl Cipher for ChaCha20 {
    fn kind(&self) -> CipherKind {
        CipherKind::Stream
    }

    fn overhead(&self) -> usize {
        NONCE_LEN
    }

    fn message_len(&self, plaintext_len: usize) -> usize {
        plaintext_len + NONCE_LEN
    }

    fn seal(&self, sequence: u64, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.seal_into(sequence, plaintext, &mut out);
        out
    }

    fn open(&self, message: &[u8]) -> Result<Vec<u8>, OpenError> {
        let mut out = Vec::new();
        self.open_into(message, &mut out)?;
        Ok(out)
    }

    fn seal_into(&self, sequence: u64, plaintext: &[u8], out: &mut Vec<u8>) {
        let nonce = self.nonce_for(sequence);
        out.clear();
        out.reserve(plaintext.len() + NONCE_LEN);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        // RFC 7539 uses counter 1 for the first data block in AEAD; as a raw
        // stream cipher we start at 0.
        let (_, body) = out.split_at_mut(NONCE_LEN);
        self.apply_keystream(&nonce, 0, body);
    }

    fn open_into(&self, message: &[u8], out: &mut Vec<u8>) -> Result<(), OpenError> {
        if message.len() < NONCE_LEN {
            return Err(OpenError::Truncated {
                len: message.len(),
                min: NONCE_LEN,
            });
        }
        let nonce: [u8; NONCE_LEN] = message[..NONCE_LEN].try_into().expect("checked length");
        out.clear();
        out.extend_from_slice(&message[NONCE_LEN..]);
        self.apply_keystream(&nonce, 0, out);
        Ok(())
    }

    fn sequence_of(&self, message: &[u8]) -> Option<u64> {
        let bytes: [u8; 8] = message.get(4..NONCE_LEN)?.try_into().ok()?;
        Some(u64::from_le_bytes(bytes))
    }
}

/// Computes one 64-byte ChaCha20 keystream block (RFC 7539 §2.3).
pub fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let state = base_state(key, counter, nonce);
    let words = block_words(&state);
    let mut out = [0u8; 64];
    for (bytes, word) in out.chunks_exact_mut(4).zip(words) {
        bytes.copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Assembles the 16-word initial state for (`key`, `counter`, `nonce`).
/// Shared with the `kdf` module, whose HChaCha20-style PRF runs the same
/// permutation over the same state layout.
pub(crate) fn base_state(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("key chunk"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] =
            u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("nonce chunk"));
    }
    state
}

/// Runs the 20 ChaCha rounds and the final state addition, returning the
/// keystream block as 16 little-endian-ready words.
///
/// The state rows are kept as four `[u32; 4]` lanes: a column round is one
/// lane-wise quarter-round, and a diagonal round is the same operation after
/// rotating rows b/c/d left by 1/2/3 lanes — exactly the shuffle an SIMD
/// implementation uses, which the autovectorizer recognizes.
fn block_words(state: &[u32; 16]) -> [u32; 16] {
    let mut out = permuted_words(state);
    for i in 0..16 {
        out[i] = out[i].wrapping_add(state[i]);
    }
    out
}

/// The bare 20-round ChaCha permutation *without* the final feed-forward
/// addition. This is the HChaCha20 core (RFC draft-irtf-cfrg-xchacha):
/// omitting the addition makes the function invertible as a permutation but
/// still one-way once half the output is discarded, which is exactly what
/// the `kdf` module's extract/expand construction relies on.
pub(crate) fn permuted_words(state: &[u32; 16]) -> [u32; 16] {
    let mut a: [u32; 4] = state[0..4].try_into().expect("row 0");
    let mut b: [u32; 4] = state[4..8].try_into().expect("row 1");
    let mut c: [u32; 4] = state[8..12].try_into().expect("row 2");
    let mut d: [u32; 4] = state[12..16].try_into().expect("row 3");

    for _ in 0..10 {
        // Column round: quarter-rounds on the four columns at once.
        lane_quarter_round(&mut a, &mut b, &mut c, &mut d);
        // Diagonal round: rotate rows so the diagonals line up as columns.
        b = [b[1], b[2], b[3], b[0]];
        c = [c[2], c[3], c[0], c[1]];
        d = [d[3], d[0], d[1], d[2]];
        lane_quarter_round(&mut a, &mut b, &mut c, &mut d);
        b = [b[3], b[0], b[1], b[2]];
        c = [c[2], c[3], c[0], c[1]];
        d = [d[1], d[2], d[3], d[0]];
    }

    let mut out = [0u32; 16];
    out[0..4].copy_from_slice(&a);
    out[4..8].copy_from_slice(&b);
    out[8..12].copy_from_slice(&c);
    out[12..16].copy_from_slice(&d);
    out
}

#[inline]
fn lane_quarter_round(a: &mut [u32; 4], b: &mut [u32; 4], c: &mut [u32; 4], d: &mut [u32; 4]) {
    for i in 0..4 {
        a[i] = a[i].wrapping_add(b[i]);
        d[i] = (d[i] ^ a[i]).rotate_left(16);
    }
    for i in 0..4 {
        c[i] = c[i].wrapping_add(d[i]);
        b[i] = (b[i] ^ c[i]).rotate_left(12);
    }
    for i in 0..4 {
        a[i] = a[i].wrapping_add(b[i]);
        d[i] = (d[i] ^ a[i]).rotate_left(8);
    }
    for i in 0..4 {
        c[i] = c[i].wrapping_add(d[i]);
        b[i] = (b[i] ^ c[i]).rotate_left(7);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 test vector.
    #[test]
    fn block_function_matches_rfc_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    /// RFC 7539 §2.4.2 encryption test vector.
    #[test]
    fn encryption_matches_rfc_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        let cipher = ChaCha20::new(key);
        cipher.apply_keystream(&nonce, 1, &mut data);
        let expected_head = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        let expected_tail = [0x87, 0x4d];
        assert_eq!(&data[..16], &expected_head);
        assert_eq!(&data[data.len() - 2..], &expected_tail);
        // Round trips.
        cipher.apply_keystream(&nonce, 1, &mut data);
        assert_eq!(&data, plaintext);
    }

    #[test]
    fn seal_open_roundtrip() {
        let cipher = ChaCha20::new([0xAB; 32]);
        for len in [0usize, 1, 63, 64, 65, 300] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let sealed = cipher.seal(len as u64, &plaintext);
            assert_eq!(sealed.len(), len + 12);
            assert_eq!(cipher.open(&sealed).unwrap(), plaintext);
        }
    }

    #[test]
    fn distinct_sequences_produce_distinct_ciphertexts() {
        let cipher = ChaCha20::new([1; 32]);
        let a = cipher.seal(1, b"same plaintext");
        let b = cipher.seal(2, b"same plaintext");
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn open_rejects_truncated_message() {
        let cipher = ChaCha20::new([1; 32]);
        let err = cipher.open(&[0u8; 5]).unwrap_err();
        assert!(matches!(err, OpenError::Truncated { len: 5, min: 12 }));
    }

    #[test]
    fn message_len_is_linear_in_plaintext() {
        let cipher = ChaCha20::new([9; 32]);
        assert_eq!(cipher.message_len(0), 12);
        assert_eq!(cipher.message_len(100), 112);
        assert_eq!(cipher.overhead(), 12);
        assert_eq!(cipher.kind(), CipherKind::Stream);
    }
}
