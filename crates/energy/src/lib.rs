//! Energy model and budget ledger for low-power sensors.
//!
//! The paper's simulator tracks energy with traces from a TI MSP430 FR5994
//! MCU and an HM-10 BLE radio (§5.1), conservatively multiplying AGE's
//! compute cost by 4×. We reproduce that with a calibrated linear model
//! ([`EnergyModel`]): per-sequence base cost (MCU active time + radio
//! connection), per-sample collection cost, per-byte transmission cost, and
//! per-value encoding cost.
//!
//! Calibration anchors (paper values):
//!
//! - Uniform sampling at 100% on the Activity dataset costs ≈ 48.5 mJ per
//!   sequence, and ≈ 36.5 mJ at 30% (Table 9 / Figure 5 axes).
//! - Standard buffer-write encoding of a 300-value Activity sequence costs
//!   ≈ 0.016 mJ; AGE's multi-step encoding costs ≈ 0.154 mJ (§5.8).
//! - An HM-10 connect-plus-40-byte message is on the order of 25 mJ (§2.1);
//!   batching amortizes the connection, which the base term captures.
//!
//! The [`BudgetLedger`] implements the paper's long-term budget semantics:
//! a policy may vary its per-sequence energy as long as the cumulative
//! spend stays within the budget; once the budget is exhausted, every
//! remaining sequence is lost (the server substitutes random values, §5.1).

mod battery;
mod harvest;

pub use battery::Battery;
pub use harvest::Harvester;

use std::fmt;

/// Joules-denominated energy amounts, stored in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MilliJoules(pub f64);

impl MilliJoules {
    /// Zero energy.
    pub const ZERO: MilliJoules = MilliJoules(0.0);

    /// Saturating subtraction (energy can't go negative).
    pub fn saturating_sub(self, other: MilliJoules) -> MilliJoules {
        MilliJoules((self.0 - other.0).max(0.0))
    }
}

impl std::ops::Add for MilliJoules {
    type Output = MilliJoules;
    fn add(self, rhs: MilliJoules) -> MilliJoules {
        MilliJoules(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for MilliJoules {
    fn add_assign(&mut self, rhs: MilliJoules) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<f64> for MilliJoules {
    type Output = MilliJoules;
    fn mul(self, rhs: f64) -> MilliJoules {
        MilliJoules(self.0 * rhs)
    }
}

impl fmt::Display for MilliJoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} mJ", self.0)
    }
}

/// Linear energy model calibrated to MSP430 FR5994 + HM-10 BLE scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Per-sequence fixed cost: MCU active window plus radio connection.
    pub base_per_seq: MilliJoules,
    /// Cost of collecting (sensing) one measurement.
    pub collect_per_sample: MilliJoules,
    /// Cost of transmitting one byte over BLE.
    pub comm_per_byte: MilliJoules,
    /// Cost of standard buffer-write encoding, per value.
    pub encode_standard_per_value: MilliJoules,
    /// Cost of AGE's multi-step encoding, per value (before the 4× factor).
    pub encode_age_per_value: MilliJoules,
    /// Conservative multiplier applied to AGE's compute (paper §5.1).
    pub age_compute_factor: f64,
    /// Cost of one NVM write attempt (a sequence-reservation journal
    /// record — the price of surviving reboots without nonce reuse).
    pub nvm_write_per_record: MilliJoules,
}

impl EnergyModel {
    /// The default MSP430 + HM-10 calibration (see crate docs).
    pub fn msp430() -> Self {
        EnergyModel {
            base_per_seq: MilliJoules(31.3),
            collect_per_sample: MilliJoules(0.0625),
            comm_per_byte: MilliJoules(0.022),
            encode_standard_per_value: MilliJoules(0.016 / 300.0),
            encode_age_per_value: MilliJoules(0.154 / 300.0),
            age_compute_factor: 4.0,
            // A word-sized FRAM/flash journal record: well under a
            // millijoule, but billed so the reservation-block trade-off
            // (one write per K frames vs. K sequences wasted per reboot)
            // is visible in the ledger.
            nvm_write_per_record: MilliJoules(0.05),
        }
    }

    /// Energy for `attempts` journal write attempts (failed attempts
    /// program the flash too, so every attempt is billed — the simulator
    /// charges this against the same budget ledger as sensing and radio).
    pub fn journal_write_cost(&self, attempts: usize) -> MilliJoules {
        self.nvm_write_per_record * attempts as f64
    }

    /// Energy to process one sequence: collect `samples`, run the encoder
    /// over `values` values, and transmit `message_bytes`.
    pub fn sequence_cost(
        &self,
        samples: usize,
        values: usize,
        message_bytes: usize,
        encoder: EncoderCost,
    ) -> MilliJoules {
        let encode = match encoder {
            EncoderCost::Standard => self.encode_standard_per_value * values as f64,
            EncoderCost::Age => {
                self.encode_age_per_value * (values as f64 * self.age_compute_factor)
            }
        };
        self.base_per_seq
            + self.collect_per_sample * samples as f64
            + self.comm_per_byte * message_bytes as f64
            + encode
    }

    /// Energy charged for retransmitting a `frame_bytes`-byte frame
    /// `retries` extra times after the initial send. Only the radio pays:
    /// the batch is already collected and encoded, so each retry costs
    /// exactly `comm_per_byte × frame_bytes` (the transport's
    /// retry/backoff loop charges this against the same budget as the
    /// first transmission).
    pub fn retransmission_cost(&self, frame_bytes: usize, retries: u32) -> MilliJoules {
        self.comm_per_byte * (frame_bytes as f64 * f64::from(retries))
    }

    /// Per-sequence budget equal to what Uniform sampling at `rate` spends
    /// on a `seq_len × features` sequence whose standard message carries
    /// `message_bytes` (paper §5.1: budgets are set from Uniform's energy).
    pub fn uniform_budget(
        &self,
        seq_len: usize,
        features: usize,
        rate: f64,
        message_bytes: usize,
    ) -> MilliJoules {
        let samples = ((rate * seq_len as f64) as usize).clamp(1, seq_len);
        self.sequence_cost(
            samples,
            samples * features,
            message_bytes,
            EncoderCost::Standard,
        )
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::msp430()
    }
}

/// Which encoding routine's compute cost to charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderCost {
    /// Direct buffer write (standard policies, padding, simple variants).
    Standard,
    /// AGE's multi-step pipeline (charged with the 4× safety factor).
    Age,
}

/// Long-term budget ledger with the paper's violation semantics.
///
/// # Examples
///
/// ```
/// use age_energy::{BudgetLedger, MilliJoules};
///
/// let mut ledger = BudgetLedger::new(MilliJoules(100.0));
/// assert!(ledger.try_spend(MilliJoules(60.0)));
/// assert!(ledger.try_spend(MilliJoules(39.0)));
/// assert!(!ledger.try_spend(MilliJoules(5.0))); // exhausted
/// assert!(ledger.violated());
/// assert!(!ledger.try_spend(MilliJoules(0.1))); // violations are permanent
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetLedger {
    budget: MilliJoules,
    spent: MilliJoules,
    violated: bool,
}

impl BudgetLedger {
    /// Creates a ledger with a total budget.
    pub fn new(budget: MilliJoules) -> Self {
        BudgetLedger {
            budget,
            spent: MilliJoules::ZERO,
            violated: false,
        }
    }

    /// Attempts to spend `cost`. Returns `false` — and records a permanent
    /// violation — if the remaining budget cannot cover it.
    pub fn try_spend(&mut self, cost: MilliJoules) -> bool {
        if self.violated || self.spent.0 + cost.0 > self.budget.0 + 1e-9 {
            self.violated = true;
            return false;
        }
        self.spent += cost;
        true
    }

    /// Total energy spent so far.
    pub fn spent(&self) -> MilliJoules {
        self.spent
    }

    /// Remaining budget.
    pub fn remaining(&self) -> MilliJoules {
        self.budget.saturating_sub(self.spent)
    }

    /// `true` once any spend was refused.
    pub fn violated(&self) -> bool {
        self.violated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// T=50, d=6 Activity-like standard message bytes at a collection count.
    fn activity_msg_bytes(k: usize) -> usize {
        (16 + k * (6 + 6 * 16)).div_ceil(8)
    }

    #[test]
    fn uniform_activity_costs_match_paper_anchors() {
        let m = EnergyModel::msp430();
        let full = m.sequence_cost(50, 300, activity_msg_bytes(50), EncoderCost::Standard);
        let low = m.sequence_cost(15, 90, activity_msg_bytes(15), EncoderCost::Standard);
        // Paper: ~48.5 mJ at 100%, ~36.5 mJ at 30% (Fig. 5 x-axis).
        assert!((full.0 - 48.5).abs() < 1.0, "full={full}");
        assert!((low.0 - 36.5).abs() < 1.5, "low={low}");
    }

    #[test]
    fn age_compute_cost_is_covered_by_30_byte_reduction() {
        // §4.5/§5.8: AGE's extra compute (even at 4×) must be smaller than
        // the savings from sending 30 fewer bytes.
        let m = EnergyModel::msp430();
        let age_extra = m.encode_age_per_value.0 * 300.0 * m.age_compute_factor
            - m.encode_standard_per_value.0 * 300.0;
        let savings = m.comm_per_byte.0 * 30.0;
        assert!(
            savings > age_extra,
            "savings {savings} vs compute {age_extra}"
        );
    }

    #[test]
    fn padding_costs_more_than_standard() {
        let m = EnergyModel::msp430();
        let std_cost = m.sequence_cost(15, 90, activity_msg_bytes(15), EncoderCost::Standard);
        let padded = m.sequence_cost(15, 90, activity_msg_bytes(50), EncoderCost::Standard);
        assert!(
            padded.0 > std_cost.0 + 5.0,
            "padding must cost visibly more"
        );
    }

    #[test]
    fn ledger_tracks_and_violates() {
        let mut l = BudgetLedger::new(MilliJoules(10.0));
        assert!(l.try_spend(MilliJoules(4.0)));
        assert_eq!(l.spent(), MilliJoules(4.0));
        assert_eq!(l.remaining(), MilliJoules(6.0));
        assert!(l.try_spend(MilliJoules(6.0)));
        assert!(!l.try_spend(MilliJoules(0.001)));
        assert!(l.violated());
    }

    #[test]
    fn ledger_violation_is_permanent() {
        let mut l = BudgetLedger::new(MilliJoules(1.0));
        assert!(!l.try_spend(MilliJoules(2.0)));
        // Even an affordable spend is refused after violation.
        assert!(!l.try_spend(MilliJoules(0.1)));
        assert_eq!(l.spent(), MilliJoules::ZERO);
    }

    #[test]
    fn ledger_accepts_exact_budget() {
        let mut l = BudgetLedger::new(MilliJoules(5.0));
        assert!(l.try_spend(MilliJoules(5.0)));
        assert!(!l.violated());
    }

    #[test]
    fn millijoules_arithmetic() {
        let a = MilliJoules(2.0) + MilliJoules(3.0);
        assert_eq!(a, MilliJoules(5.0));
        assert_eq!(a * 2.0, MilliJoules(10.0));
        assert_eq!(
            MilliJoules(1.0).saturating_sub(MilliJoules(4.0)),
            MilliJoules::ZERO
        );
        assert_eq!(MilliJoules(1.5).to_string(), "1.500 mJ");
    }

    #[test]
    fn uniform_budget_scales_with_rate() {
        let m = EnergyModel::msp430();
        let b30 = m.uniform_budget(50, 6, 0.3, activity_msg_bytes(15));
        let b70 = m.uniform_budget(50, 6, 0.7, activity_msg_bytes(35));
        let b100 = m.uniform_budget(50, 6, 1.0, activity_msg_bytes(50));
        assert!(b30 < b70 && b70 < b100);
    }
}
