//! Energy harvesting: intermittent power for satellites and field sensors.
//!
//! The paper's example systems run on "battery or intermittent power"
//! (§3.3, Orbital Edge Computing): a solar-charged store fills while the
//! node is illuminated and drains per batch. Unlike the [`crate::BudgetLedger`]'s
//! long-term budget, a harvester imposes a *rolling* constraint — the store
//! must never go empty, and surplus beyond the capacity is wasted. AGE's
//! smaller messages translate directly into fewer skipped batches during
//! eclipse.

use crate::MilliJoules;

/// A harvested-energy store with per-step income and finite capacity.
///
/// # Examples
///
/// ```
/// use age_energy::{Harvester, MilliJoules};
///
/// // 200 mJ capacity, 40 mJ harvested per step while in sunlight.
/// let mut h = Harvester::new(MilliJoules(200.0), MilliJoules(40.0));
/// h.step(true);                     // harvest one interval
/// assert!(h.try_spend(MilliJoules(35.0)));
/// h.step(false);                    // eclipse: no income
/// assert!(!h.try_spend(MilliJoules(50.0))); // store too low
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Harvester {
    capacity: MilliJoules,
    stored: MilliJoules,
    income: MilliJoules,
    harvested_total: MilliJoules,
    wasted_total: MilliJoules,
}

impl Harvester {
    /// Creates an empty store with `capacity` and per-step `income` while
    /// illuminated.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `income` is negative.
    pub fn new(capacity: MilliJoules, income: MilliJoules) -> Self {
        assert!(capacity.0 > 0.0, "capacity must be positive");
        assert!(income.0 >= 0.0, "income must be non-negative");
        Harvester {
            capacity,
            stored: MilliJoules::ZERO,
            income,
            harvested_total: MilliJoules::ZERO,
            wasted_total: MilliJoules::ZERO,
        }
    }

    /// Advances one interval; harvests when `illuminated`. Income beyond
    /// the capacity is counted as waste (the §3.3 reality of small storage).
    pub fn step(&mut self, illuminated: bool) {
        if !illuminated {
            return;
        }
        let headroom = self.capacity.saturating_sub(self.stored);
        let gained = MilliJoules(self.income.0.min(headroom.0));
        self.stored += gained;
        self.harvested_total += self.income;
        self.wasted_total += self.income.saturating_sub(gained);
    }

    /// Spends `cost` if the store covers it. Unlike a budget ledger, a
    /// refusal is *not* permanent — the node sleeps and retries after
    /// harvesting more.
    pub fn try_spend(&mut self, cost: MilliJoules) -> bool {
        if cost.0 > self.stored.0 + 1e-9 {
            return false;
        }
        self.stored = self.stored.saturating_sub(cost);
        true
    }

    /// Energy currently stored.
    pub fn stored(&self) -> MilliJoules {
        self.stored
    }

    /// Total income that arrived while the store was full.
    pub fn wasted(&self) -> MilliJoules {
        self.wasted_total
    }

    /// Total income over the run.
    pub fn harvested(&self) -> MilliJoules {
        self.harvested_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvests_only_in_sunlight() {
        let mut h = Harvester::new(MilliJoules(100.0), MilliJoules(10.0));
        h.step(false);
        assert_eq!(h.stored(), MilliJoules::ZERO);
        h.step(true);
        assert_eq!(h.stored(), MilliJoules(10.0));
    }

    #[test]
    fn capacity_caps_the_store_and_counts_waste() {
        let mut h = Harvester::new(MilliJoules(25.0), MilliJoules(10.0));
        for _ in 0..5 {
            h.step(true);
        }
        assert_eq!(h.stored(), MilliJoules(25.0));
        assert_eq!(h.harvested(), MilliJoules(50.0));
        assert_eq!(h.wasted(), MilliJoules(25.0));
    }

    #[test]
    fn refusal_is_not_permanent() {
        let mut h = Harvester::new(MilliJoules(100.0), MilliJoules(30.0));
        h.step(true);
        assert!(!h.try_spend(MilliJoules(40.0)));
        h.step(true);
        assert!(h.try_spend(MilliJoules(40.0)));
        assert_eq!(h.stored(), MilliJoules(20.0));
    }

    #[test]
    fn duty_cycle_determines_throughput() {
        // Orbit: 60% sunlight. Batches cost 45 mJ, income 40 mJ/interval:
        // sustainable rate is 0.6*40/45 ≈ 53% of intervals.
        let mut h = Harvester::new(MilliJoules(500.0), MilliJoules(40.0));
        let mut sent = 0usize;
        for step in 0..1000 {
            h.step(step % 5 < 3);
            if h.try_spend(MilliJoules(45.0)) {
                sent += 1;
            }
        }
        let rate = sent as f64 / 1000.0;
        assert!((rate - 0.53).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn cheaper_messages_mean_more_batches() {
        let run = |cost: f64| -> usize {
            let mut h = Harvester::new(MilliJoules(300.0), MilliJoules(30.0));
            let mut sent = 0;
            for step in 0..500 {
                h.step(step % 3 != 0);
                if h.try_spend(MilliJoules(cost)) {
                    sent += 1;
                }
            }
            sent
        };
        // AGE-sized vs padded-sized batches.
        assert!(run(42.0) > run(48.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = Harvester::new(MilliJoules(0.0), MilliJoules(1.0));
    }
}
