//! Battery capacity and sensor-lifetime estimation.
//!
//! The paper motivates long-term budgets with finite batteries: ZebraNet
//! collars must survive at least 72 hours on battery alone (§2.1). This
//! module turns per-sequence energy costs into deployment-level questions —
//! how many batches fit in a battery, and how long the sensor lives at a
//! given reporting period.

use crate::MilliJoules;

/// A finite energy store with monotone draw-down.
///
/// # Examples
///
/// ```
/// use age_energy::{Battery, MilliJoules};
///
/// // A small coin cell: 230 mAh at 3 V ≈ 2.48 MJ… in millijoules.
/// let mut battery = Battery::from_mah(230.0, 3.0);
/// assert!(battery.draw(MilliJoules(48.5)));
/// assert!(battery.fraction_remaining() > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity: MilliJoules,
    drawn: MilliJoules,
}

impl Battery {
    /// Creates a battery with `capacity` of stored energy.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive.
    pub fn new(capacity: MilliJoules) -> Self {
        assert!(capacity.0 > 0.0, "battery capacity must be positive");
        Battery {
            capacity,
            drawn: MilliJoules::ZERO,
        }
    }

    /// Creates a battery from a milliamp-hour rating and nominal voltage:
    /// `mAh · 3600 · V` millijoules.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn from_mah(mah: f64, volts: f64) -> Self {
        assert!(mah > 0.0 && volts > 0.0, "ratings must be positive");
        Battery::new(MilliJoules(mah * 3600.0 * volts))
    }

    /// Rated capacity.
    pub fn capacity(&self) -> MilliJoules {
        self.capacity
    }

    /// Energy still available.
    pub fn remaining(&self) -> MilliJoules {
        self.capacity.saturating_sub(self.drawn)
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn fraction_remaining(&self) -> f64 {
        (self.remaining().0 / self.capacity.0).clamp(0.0, 1.0)
    }

    /// `true` once the battery cannot cover any further cost.
    pub fn is_depleted(&self) -> bool {
        self.remaining().0 <= 0.0
    }

    /// Draws `cost` if available; returns `false` (drawing nothing) when
    /// the remaining charge cannot cover it.
    pub fn draw(&mut self, cost: MilliJoules) -> bool {
        if cost.0 > self.remaining().0 + 1e-9 {
            return false;
        }
        self.drawn += cost;
        true
    }

    /// How many sequences of `cost_per_sequence` the remaining charge
    /// covers.
    pub fn sequences_remaining(&self, cost_per_sequence: MilliJoules) -> u64 {
        if cost_per_sequence.0 <= 0.0 {
            return u64::MAX;
        }
        (self.remaining().0 / cost_per_sequence.0) as u64
    }

    /// Estimated lifetime in hours when one sequence is processed every
    /// `sequence_period_secs` seconds.
    pub fn lifetime_hours(&self, cost_per_sequence: MilliJoules, sequence_period_secs: f64) -> f64 {
        self.sequences_remaining(cost_per_sequence) as f64 * sequence_period_secs / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_from_mah() {
        let b = Battery::from_mah(1000.0, 3.0);
        assert_eq!(b.capacity(), MilliJoules(10_800_000.0));
    }

    #[test]
    fn draw_and_deplete() {
        let mut b = Battery::new(MilliJoules(100.0));
        assert!(b.draw(MilliJoules(60.0)));
        assert!(b.draw(MilliJoules(40.0)));
        assert!(b.is_depleted());
        assert!(!b.draw(MilliJoules(0.1)));
        assert_eq!(b.remaining(), MilliJoules::ZERO);
    }

    #[test]
    fn refusal_leaves_charge_untouched() {
        let mut b = Battery::new(MilliJoules(10.0));
        assert!(!b.draw(MilliJoules(11.0)));
        assert_eq!(b.remaining(), MilliJoules(10.0));
    }

    #[test]
    fn lifetime_estimation() {
        // 1000 sequences at 50 mJ in a 50 J battery, one per 6 seconds.
        let b = Battery::new(MilliJoules(50_000.0));
        assert_eq!(b.sequences_remaining(MilliJoules(50.0)), 1000);
        let hours = b.lifetime_hours(MilliJoules(50.0), 6.0);
        assert!((hours - 1000.0 * 6.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn zebranet_style_72_hour_requirement() {
        // A 2000 mAh / 3.6 V pack handling one ~48.5 mJ batch every 6 s
        // must comfortably exceed the paper's 72-hour floor (§2.1).
        let b = Battery::from_mah(2000.0, 3.6);
        let hours = b.lifetime_hours(MilliJoules(48.5), 6.0);
        assert!(hours > 72.0, "lifetime {hours:.1} h");
    }

    #[test]
    fn lower_message_cost_extends_lifetime() {
        let b = Battery::from_mah(230.0, 3.0);
        let padded = b.lifetime_hours(MilliJoules(48.2), 6.0);
        let age = b.lifetime_hours(MilliJoules(42.3), 6.0);
        assert!(age > padded * 1.1, "AGE {age:.1} h vs padded {padded:.1} h");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_empty_battery() {
        let _ = Battery::new(MilliJoules(0.0));
    }
}
