//! The disabled-instrumentation contract: built with `--no-default-features`
//! the encoders must not emit a single record even with a sink installed,
//! because every telemetry call site is compiled out. This is a security
//! property, not just a cost one — instrumentation that survived into MCU
//! builds could itself become a timing side channel.
//!
//! Only compiled when the `telemetry` feature is off; the CI leg running
//! `cargo test --no-default-features` is what exercises it.

#![cfg(not(feature = "telemetry"))]

use std::sync::Arc;

use age::core::{AgeEncoder, Batch, BatchConfig, Encoder, PaddedEncoder, StandardEncoder};
use age::fixed::Format;
use age::telemetry::metrics::global;
use age::telemetry::{install_thread, RecordingSink};

#[test]
fn encoders_emit_nothing_when_the_feature_is_off() {
    let cfg = BatchConfig::new(50, 2, Format::new(16, 12).unwrap()).unwrap();
    let values: Vec<f64> = (0..40).map(|i| (i as f64) * 0.05 - 1.0).collect();
    let batch = Batch::new((0..20).collect(), values).unwrap();

    let sink = Arc::new(RecordingSink::new());
    let calls_before = global::ENCODE_CALLS.get();
    {
        let _guard = install_thread(sink.clone());
        let encoders: Vec<Box<dyn Encoder>> = vec![
            Box::new(AgeEncoder::new(200)),
            Box::new(StandardEncoder),
            Box::new(PaddedEncoder::for_config(&cfg)),
        ];
        for enc in &encoders {
            let msg = enc.encode(&batch, &cfg).unwrap();
            assert!(!msg.is_empty());
        }
    }
    assert!(
        sink.is_empty(),
        "no-default-features builds must compile out every emit site"
    );
    assert_eq!(
        global::ENCODE_CALLS.get(),
        calls_before,
        "global counters must not tick either"
    );
}
