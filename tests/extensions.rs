//! Integration tests for the beyond-the-paper components: the node API,
//! AEAD links, MCU paths, the feedback policy, compression leakage, and
//! battery accounting — all working together.

use age::attack::{nmi, welch_t_test};
use age::core::mcu::{encode_raw, RawBatch};
use age::core::{inspect_message, target, AgeEncoder, Batch, BatchConfig, DeltaCodec, Encoder};
use age::crypto::ChaCha20Poly1305;
use age::datasets::{read_sequences, write_sequences, Dataset, DatasetKind, Scale};
use age::energy::{Battery, EncoderCost, EnergyModel};
use age::sampling::mcu::RawLinearPolicy;
use age::sampling::{FeedbackPolicy, LinearPolicy, Policy};
use age::sim::node::{Link, Sensor, Server};

#[test]
fn authenticated_pipeline_with_losses_and_battery() {
    let data = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 21);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let m_b = target::target_bytes(&cfg, 0.6);
    let plain = target::plaintext_budget(
        target::reduced_target_bytes(m_b),
        age::crypto::CipherKind::Stream,
        28,
        16,
    )
    .max(AgeEncoder::min_target_bytes(&cfg));

    let mut sensor = Sensor::new(
        cfg,
        Box::new(LinearPolicy::new(0.4)),
        Box::new(AgeEncoder::new(plain)),
        Box::new(ChaCha20Poly1305::new([0xEE; 32])),
    );
    let server = Server::new(
        cfg,
        Box::new(AgeEncoder::new(plain)),
        Box::new(ChaCha20Poly1305::new([0xEE; 32])),
    );
    let mut link = Link::lossy(0.15, 4);
    let model = EnergyModel::msp430();
    let mut battery = Battery::from_mah(230.0, 3.0);

    let mut sizes = std::collections::HashSet::new();
    let mut received = 0usize;
    for seq in data.sequences() {
        let message = sensor.process(&seq.values);
        sizes.insert(message.len());
        let k = message.len(); // cost uses real message size
        battery.draw(model.sequence_cost(20, 60, k, EncoderCost::Age));
        if let Some(delivered) = link.transmit(message) {
            let recon = server.receive(&delivered).unwrap();
            assert_eq!(recon.len(), seq.values.len());
            received += 1;
        }
    }
    assert_eq!(sizes.len(), 1, "AEAD framing must keep sizes constant");
    assert!(received > 0 && link.dropped() > 0);
    assert!(battery.fraction_remaining() > 0.9);
}

#[test]
fn mcu_paths_agree_with_float_paths_end_to_end() {
    // Integer policy + integer encoder vs float policy + float encoder.
    let data = Dataset::generate(DatasetKind::Activity, Scale::Small, 22);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let fmt = spec.format;
    let scale = f64::powi(2.0, i32::from(fmt.frac()));
    let threshold = 0.8;
    let float_policy = LinearPolicy::new(threshold);
    let raw_policy = RawLinearPolicy::from_float_threshold(threshold, fmt.frac());
    let encoder = AgeEncoder::new(200);

    for seq in data.sequences().iter().take(12) {
        let raw_values: Vec<i64> = seq
            .values
            .iter()
            .map(|&x| (x * scale).round() as i64)
            .collect();
        let f_idx = float_policy.sample(&seq.values, spec.features);
        let r_idx = raw_policy.sample(&raw_values, spec.features);
        assert_eq!(f_idx, r_idx, "policy decisions must match");

        let mut collected = Vec::new();
        for &t in &f_idx {
            collected.extend_from_slice(&seq.values[t * spec.features..(t + 1) * spec.features]);
        }
        let batch = Batch::new(f_idx, collected).unwrap();
        let raw_batch = RawBatch::from_batch(&batch, &cfg);
        assert_eq!(
            encoder.encode(&batch, &cfg).unwrap(),
            encode_raw(&encoder, &raw_batch, &cfg).unwrap(),
            "messages must be bit-identical"
        );
    }
}

#[test]
fn feedback_policy_feeds_age_without_offline_fit() {
    let data = Dataset::generate(DatasetKind::Pavement, Scale::Small, 23);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let encoder = AgeEncoder::new(90);
    let mut policy = FeedbackPolicy::new(0.5);

    let mut sizes = std::collections::HashSet::new();
    for seq in data.sequences() {
        let indices = policy.sample_and_adapt(&seq.values, spec.features);
        let mut values = Vec::new();
        for &t in &indices {
            values.extend_from_slice(&seq.values[t * spec.features..(t + 1) * spec.features]);
        }
        let batch = Batch::new(indices, values).unwrap();
        sizes.insert(encoder.encode(&batch, &cfg).unwrap().len());
    }
    assert_eq!(sizes.len(), 1);
    assert!((policy.smoothed_rate() - 0.5).abs() < 0.25);
}

#[test]
fn compression_leaks_where_age_does_not() {
    let data = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 24);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let uniform = age::sampling::UniformPolicy::new(0.6);
    let age_enc = AgeEncoder::new(600);
    let delta = DeltaCodec;

    let mut labels = Vec::new();
    let mut delta_sizes = Vec::new();
    let mut age_sizes = Vec::new();
    for seq in data.sequences() {
        let indices = uniform.sample(&seq.values, spec.features);
        let mut values = Vec::new();
        for &t in &indices {
            values.extend_from_slice(&seq.values[t * spec.features..(t + 1) * spec.features]);
        }
        let batch = Batch::new(indices, values).unwrap();
        labels.push(seq.label);
        delta_sizes.push(delta.encode(&batch, &cfg).unwrap().len());
        age_sizes.push(age_enc.encode(&batch, &cfg).unwrap().len());
    }
    assert!(nmi(&labels, &delta_sizes) > 0.2, "delta codec must leak");
    assert_eq!(nmi(&labels, &age_sizes), 0.0, "AGE must not leak");
}

#[test]
fn welch_test_separates_leaky_size_distributions() {
    // Reproduce the §3.2 analysis end-to-end on generated data.
    let data = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 25);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let policy = LinearPolicy::new(0.5);
    let std_enc = age::core::StandardEncoder;

    let mut by_label: Vec<Vec<f64>> = vec![Vec::new(); spec.num_labels];
    for seq in data.sequences() {
        let indices = policy.sample(&seq.values, spec.features);
        let mut values = Vec::new();
        for &t in &indices {
            values.extend_from_slice(&seq.values[t * spec.features..(t + 1) * spec.features]);
        }
        let batch = Batch::new(indices, values).unwrap();
        by_label[seq.label].push(std_enc.encode(&batch, &cfg).unwrap().len() as f64);
    }
    // Seizure (0) vs walking (1) must separate significantly.
    let test = welch_t_test(&by_label[0], &by_label[1]).expect("both events present");
    assert!(test.significant(0.01), "p={}", test.p_two_sided);
}

#[test]
fn real_data_path_runs_the_full_experiment_suite() {
    // Export -> import -> Dataset::from_sequences -> Runner: the road a
    // user with real recordings takes to reproduce the paper's analysis.
    let generated = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 33);
    let spec = *generated.spec();
    let mut buffer = Vec::new();
    write_sequences(generated.sequences(), &mut buffer).unwrap();
    let loaded = read_sequences(buffer.as_slice(), spec.seq_len, spec.features).unwrap();
    let data = Dataset::from_sequences(DatasetKind::Epilepsy, loaded).unwrap();
    assert_eq!(data.sequences(), generated.sequences());

    let runner = age::sim::Runner::with_dataset(data, 33);
    let res = runner.run(
        age::sim::PolicyKind::Linear,
        age::sim::Defense::Age,
        0.6,
        age::sim::CipherChoice::ChaCha20,
        false,
    );
    assert_eq!(res.nmi(), 0.0);
    assert!(!res.records.is_empty());

    // Shape validation catches mistakes loudly.
    let bad = vec![age::datasets::Sequence {
        label: 0,
        values: vec![0.0; 3],
    }];
    assert!(Dataset::from_sequences(DatasetKind::Epilepsy, bad).is_err());
    let bad_label = vec![age::datasets::Sequence {
        label: 99,
        values: vec![0.0; spec.seq_len * spec.features],
    }];
    assert!(Dataset::from_sequences(DatasetKind::Epilepsy, bad_label).is_err());
    assert!(Dataset::from_sequences(DatasetKind::Epilepsy, Vec::new()).is_err());
}

#[test]
fn csv_roundtrip_through_the_full_pipeline() {
    let data = Dataset::generate(DatasetKind::Strawberry, Scale::Small, 26);
    let spec = *data.spec();
    let mut buffer = Vec::new();
    write_sequences(data.sequences(), &mut buffer).unwrap();
    let loaded = read_sequences(buffer.as_slice(), spec.seq_len, spec.features).unwrap();

    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let encoder = AgeEncoder::new(160);
    let policy = LinearPolicy::new(0.1);
    for seq in &loaded {
        let indices = policy.sample(&seq.values, spec.features);
        let mut values = Vec::new();
        for &t in &indices {
            values.extend_from_slice(&seq.values[t * spec.features..(t + 1) * spec.features]);
        }
        let batch = Batch::new(indices, values).unwrap();
        let msg = encoder.encode(&batch, &cfg).unwrap();
        assert_eq!(msg.len(), 160);
        let layout = inspect_message(&msg, &cfg).unwrap();
        assert_eq!(layout.total_bytes, 160);
    }
}
