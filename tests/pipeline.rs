//! Cross-crate integration tests: the full sensor → attacker pipeline.

use age::attack::{nmi, ClassifierAttack};
use age::core::{AgeEncoder, Batch, BatchConfig, Encoder, PaddedEncoder, StandardEncoder};
use age::crypto::{AesCbc, ChaCha20, Cipher};
use age::datasets::{Dataset, DatasetKind, Scale};
use age::fixed::Format;
use age::reconstruct::{interpolate, mae};
use age::sampling::{DeviationPolicy, LinearPolicy, Policy, UniformPolicy};
use age::sim::{CipherChoice, Defense, PolicyKind, Runner};

/// Builds a batch by running a policy over a dataset sequence.
fn sample_batch(policy: &dyn Policy, values: &[f64], d: usize) -> Batch {
    let indices = policy.sample(values, d);
    let mut collected = Vec::with_capacity(indices.len() * d);
    for &t in &indices {
        collected.extend_from_slice(&values[t * d..(t + 1) * d]);
    }
    Batch::new(indices, collected).expect("policy output is valid")
}

#[test]
fn sensor_to_server_roundtrip_with_encryption() {
    let data = Dataset::generate(DatasetKind::Activity, Scale::Small, 5);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let policy = LinearPolicy::new(0.2);
    let encoder = AgeEncoder::new(260);
    let cipher = ChaCha20::new([9; 32]);

    for (i, seq) in data.sequences().iter().take(10).enumerate() {
        let batch = sample_batch(&policy, &seq.values, spec.features);
        let plaintext = encoder.encode(&batch, &cfg).unwrap();
        let sealed = cipher.seal(i as u64, &plaintext);
        assert_eq!(sealed.len(), 260 + 12, "fixed size through encryption");

        let opened = cipher.open(&sealed).unwrap();
        let decoded = encoder.decode(&opened, &cfg).unwrap();
        let recon = interpolate(
            decoded.indices(),
            decoded.values(),
            spec.seq_len,
            spec.features,
        );
        let err = mae(&recon, &seq.values);
        assert!(err.is_finite());
        // Reconstruction error is bounded by the format range.
        assert!(err < spec.format.max_value() - spec.format.min_value());
    }
}

#[test]
fn adaptive_sampling_beats_uniform_on_volatile_data() {
    let data = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 6);
    let spec = *data.spec();
    let d = spec.features;
    let mut uniform_err = 0.0;
    let mut adaptive_err = 0.0;
    let mut adaptive_total = 0usize;
    let mut uniform_total = 0usize;
    let uniform = UniformPolicy::new(0.5);
    // Fit the adaptive threshold to the same 50% average rate.
    let train: Vec<&[f64]> = data
        .sequences()
        .iter()
        .map(|s| s.values.as_slice())
        .collect();
    let thr = age::sampling::fit_threshold(LinearPolicy::new, &train, d, 0.5, 8.0, 20);
    let adaptive = LinearPolicy::new(thr);
    for seq in data.sequences() {
        for (policy, err, total) in [
            (
                &uniform as &dyn Policy,
                &mut uniform_err,
                &mut uniform_total,
            ),
            (
                &adaptive as &dyn Policy,
                &mut adaptive_err,
                &mut adaptive_total,
            ),
        ] {
            let batch = sample_batch(policy, &seq.values, d);
            *total += batch.len();
            let recon = interpolate(batch.indices(), batch.values(), spec.seq_len, d);
            *err += mae(&recon, &seq.values);
        }
    }
    // The adaptive policy spends its samples where the signal moves: at a
    // comparable overall rate it must reconstruct better.
    let ratio = adaptive_total as f64 / uniform_total as f64;
    assert!(ratio < 1.25, "adaptive used {ratio:.2}x the samples");
    assert!(
        adaptive_err < uniform_err,
        "adaptive {adaptive_err} should beat uniform {uniform_err}"
    );
}

#[test]
fn message_sizes_leak_through_standard_encoding_but_not_age() {
    let data = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 7);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let policy = DeviationPolicy::new(0.05);
    let standard = StandardEncoder;
    let age = AgeEncoder::new(400);
    let cipher = ChaCha20::new([1; 32]);

    let mut labels = Vec::new();
    let mut std_sizes = Vec::new();
    let mut age_sizes = Vec::new();
    for (i, seq) in data.sequences().iter().enumerate() {
        let batch = sample_batch(&policy, &seq.values, spec.features);
        labels.push(seq.label);
        std_sizes.push(
            cipher
                .seal(i as u64, &standard.encode(&batch, &cfg).unwrap())
                .len(),
        );
        age_sizes.push(
            cipher
                .seal(i as u64, &age.encode(&batch, &cfg).unwrap())
                .len(),
        );
    }
    assert!(nmi(&labels, &std_sizes) > 0.1, "standard must leak");
    assert_eq!(nmi(&labels, &age_sizes), 0.0, "AGE must not leak");
}

#[test]
fn block_cipher_padding_is_content_independent() {
    let cfg = BatchConfig::new(50, 6, Format::new(16, 13).unwrap()).unwrap();
    let encoder = AgeEncoder::new(220);
    let cipher = AesCbc::new([3; 16]);
    let mut lengths = std::collections::HashSet::new();
    for k in [1usize, 10, 25, 50] {
        let batch = Batch::new(
            (0..k).collect(),
            (0..k * 6).map(|i| (i as f64 * 0.11).sin()).collect(),
        )
        .unwrap();
        let sealed = cipher.seal(k as u64, &encoder.encode(&batch, &cfg).unwrap());
        lengths.insert(sealed.len());
    }
    assert_eq!(
        lengths.len(),
        1,
        "AES-CBC framing must not reintroduce variance"
    );
}

#[test]
fn padded_defense_matches_age_security_at_higher_cost() {
    let data = Dataset::generate(DatasetKind::Pavement, Scale::Small, 8);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format).unwrap();
    let policy = LinearPolicy::new(1.0);
    let padded = PaddedEncoder::for_config(&cfg);
    let age = AgeEncoder::new(80);

    let mut padded_bytes = 0usize;
    let mut age_bytes = 0usize;
    let mut labels = Vec::new();
    let mut padded_sizes = Vec::new();
    for seq in data.sequences() {
        let batch = sample_batch(&policy, &seq.values, spec.features);
        let p = padded.encode(&batch, &cfg).unwrap();
        let a = age.encode(&batch, &cfg).unwrap();
        padded_bytes += p.len();
        age_bytes += a.len();
        labels.push(seq.label);
        padded_sizes.push(p.len());
    }
    assert_eq!(nmi(&labels, &padded_sizes), 0.0, "padding is leak-free");
    assert!(
        padded_bytes > 2 * age_bytes,
        "padding should cost far more bytes ({padded_bytes} vs {age_bytes})"
    );
}

#[test]
fn end_to_end_attack_reproduces_the_papers_story() {
    // Epilepsy + Linear: the §5.4 worst case. Standard leaks enough for the
    // attack to beat blind guessing; AGE forces it back down.
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 99);
    let attack = ClassifierAttack {
        total_samples: 800,
        n_estimators: 20,
        ..Default::default()
    };

    let leaky = runner.run(
        PolicyKind::Linear,
        Defense::Standard,
        0.7,
        CipherChoice::ChaCha20,
        false,
    );
    let leaky_outcome = attack.run(&leaky.observations());
    assert!(
        leaky_outcome.mean_accuracy() > leaky_outcome.baseline + 0.15,
        "attack should beat baseline: {} vs {}",
        leaky_outcome.mean_accuracy(),
        leaky_outcome.baseline
    );

    let defended = runner.run(
        PolicyKind::Linear,
        Defense::Age,
        0.7,
        CipherChoice::ChaCha20,
        false,
    );
    let defended_outcome = attack.run(&defended.observations());
    assert!(
        (defended_outcome.mean_accuracy() - defended_outcome.baseline).abs() < 0.05,
        "AGE should reduce the attack to the baseline: {} vs {}",
        defended_outcome.mean_accuracy(),
        defended_outcome.baseline
    );
}

#[test]
fn all_nine_datasets_run_through_the_pipeline() {
    for kind in DatasetKind::all() {
        let runner = Runner::new(kind, Scale::Small, 3);
        let res = runner.run(
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            false,
        );
        assert!(!res.records.is_empty(), "{kind}");
        assert_eq!(res.nmi(), 0.0, "{kind}: AGE must not leak");
        assert!(res.mean_mae().is_finite(), "{kind}");
        let sizes: std::collections::HashSet<usize> =
            res.observations().iter().map(|&(_, s)| s).collect();
        assert_eq!(sizes.len(), 1, "{kind}: AGE sizes must be constant");
    }
}
