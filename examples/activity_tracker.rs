//! The ZebraNet/wearable scenario (§2.2, Figure 5): activity tracking with
//! an accelerometer. Compares Uniform sampling against adaptive policies
//! with and without AGE across energy budgets, and shows the leakage each
//! configuration exposes.
//!
//! ```text
//! cargo run --release --example activity_tracker
//! ```

use age::attack::ClassifierAttack;
use age::datasets::{DatasetKind, Scale};
use age::sim::{CipherChoice, Defense, PolicyKind, Runner};

fn main() {
    println!("== Activity tracker (Activity dataset) ==\n");
    let runner = Runner::new(DatasetKind::Activity, Scale::Default, 11);

    // Figure 5: MAE for each budget.
    println!("MAE per energy budget:");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "rate", "Uniform", "Linear", "Linear+AGE", "Deviation", "Dev+AGE"
    );
    for pct in [30u32, 40, 50, 60, 70, 80, 90, 100] {
        let rate = pct as f64 / 100.0;
        let row: Vec<f64> = [
            (PolicyKind::Uniform, Defense::Standard),
            (PolicyKind::Linear, Defense::Standard),
            (PolicyKind::Linear, Defense::Age),
            (PolicyKind::Deviation, Defense::Standard),
            (PolicyKind::Deviation, Defense::Age),
        ]
        .iter()
        .map(|&(p, d)| {
            runner
                .run(p, d, rate, CipherChoice::ChaCha20, true)
                .mean_mae()
        })
        .collect();
        println!(
            "{:>5}% {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            pct, row[0], row[1], row[2], row[3], row[4]
        );
    }

    // Leakage at a representative budget.
    println!("\nLeakage at the 50% budget:");
    let attack = ClassifierAttack {
        total_samples: 2_000,
        ..Default::default()
    };
    for (policy, defense) in [
        (PolicyKind::Uniform, Defense::Standard),
        (PolicyKind::Linear, Defense::Standard),
        (PolicyKind::Linear, Defense::Age),
    ] {
        let res = runner.run(policy, defense, 0.5, CipherChoice::ChaCha20, false);
        let outcome = attack.run(&res.observations());
        println!(
            "  {:<10} {:<5}  NMI {:.3}   attack {:.1}% (baseline {:.1}%)",
            res.policy,
            res.defense,
            res.nmi(),
            outcome.mean_accuracy() * 100.0,
            outcome.baseline * 100.0
        );
    }

    println!("\nAdaptive sampling beats Uniform on error; AGE keeps that win");
    println!("while reducing the attack to blind guessing.");
}
