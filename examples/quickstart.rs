//! Quickstart: encode adaptive-sampling batches into fixed-length messages.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use age::core::{AgeEncoder, Batch, BatchConfig, Encoder, StandardEncoder};
use age::crypto::{ChaCha20, Cipher};
use age::fixed::Format;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A wearable batching up to 50 accelerometer measurements (6 features,
    // 16-bit fixed point with 13 fractional bits — the Activity dataset).
    let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;

    // The adaptive policy collected 9 measurements on a calm window and 42
    // on a volatile one.
    let calm = Batch::new(
        (0..9).map(|i| i * 5).collect(),
        (0..9 * 6).map(|i| 0.1 + 0.001 * i as f64).collect(),
    )?;
    let volatile = Batch::new(
        (0..42).collect(),
        (0..42 * 6)
            .map(|i| ((i as f64) * 0.7).sin() * 2.5)
            .collect(),
    )?;

    // Without a defense, message sizes reveal the collection rate.
    let standard = StandardEncoder;
    println!("standard encoding:");
    println!(
        "  calm window     -> {} bytes",
        standard.encode(&calm, &cfg)?.len()
    );
    println!(
        "  volatile window -> {} bytes  (leaks the event!)",
        standard.encode(&volatile, &cfg)?.len()
    );

    // AGE: every batch becomes exactly the target size.
    let age = AgeEncoder::new(220);
    let msg_calm = age.encode(&calm, &cfg)?;
    let msg_volatile = age.encode(&volatile, &cfg)?;
    println!("\nAGE encoding (target 220 bytes):");
    println!("  calm window     -> {} bytes", msg_calm.len());
    println!(
        "  volatile window -> {} bytes  (indistinguishable)",
        msg_volatile.len()
    );

    // The encoding is lossy but precise: decode and inspect the error.
    let decoded = age.decode(&msg_volatile, &cfg)?;
    let max_err = decoded
        .values()
        .iter()
        .zip(volatile.values())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\ndecoded {} of {} measurements, max per-value error {:.5}",
        decoded.len(),
        volatile.len(),
        max_err
    );

    // Encryption preserves the fixed length (stream cipher adds its nonce).
    let cipher = ChaCha20::new([7; 32]);
    let sealed = cipher.seal(1, &msg_volatile);
    println!(
        "\nencrypted message: {} bytes ({} + {}-byte nonce)",
        sealed.len(),
        msg_volatile.len(),
        cipher.overhead()
    );
    Ok(())
}
