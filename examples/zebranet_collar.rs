//! The ZebraNet/TigerCENSE scenario (§3.3): a wildlife collar that must not
//! leak an endangered animal's activity (and hence location cues) to
//! poachers sniffing near the base station, while surviving the deployment
//! on one battery.
//!
//! Demonstrates two extensions beyond the paper: online budget-feedback
//! sampling (no offline training data in the savanna) and battery-lifetime
//! accounting.
//!
//! ```text
//! cargo run --release --example zebranet_collar
//! ```

use age::attack::nmi;
use age::core::{target, AgeEncoder, Batch, BatchConfig, Encoder, StandardEncoder};
use age::crypto::{ChaCha20Poly1305, Cipher};
use age::datasets::{Dataset, DatasetKind, Scale};
use age::energy::{Battery, EncoderCost, EnergyModel, MilliJoules};
use age::sampling::FeedbackPolicy;

fn main() {
    println!("== Wildlife collar (Activity dataset as animal accelerometry) ==\n");
    let data = Dataset::generate(DatasetKind::Activity, Scale::Default, 7);
    let spec = *data.spec();
    let cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format)
        .expect("Table 3 config is valid");
    let energy = EnergyModel::msp430();
    let cipher = ChaCha20Poly1305::new([0x5A; 32]); // authenticated link

    // No offline training in the field: the collar tunes its own threshold.
    let mut policy = FeedbackPolicy::new(0.5);

    let m_b = target::target_bytes(&cfg, 0.5);
    let plain = target::plaintext_budget(
        target::reduced_target_bytes(m_b),
        cipher.kind(),
        cipher.overhead(),
        16,
    );
    let age_encoder = AgeEncoder::new(plain);
    let std_encoder = StandardEncoder;

    let mut battery_std = Battery::from_mah(230.0, 3.0);
    let mut battery_age = Battery::from_mah(230.0, 3.0);
    let mut observations_std = Vec::new();
    let mut observations_age = Vec::new();

    for (i, seq) in data.sequences().iter().enumerate() {
        let indices = policy.sample_and_adapt(&seq.values, spec.features);
        let mut values = Vec::with_capacity(indices.len() * spec.features);
        for &t in &indices {
            values.extend_from_slice(&seq.values[t * spec.features..(t + 1) * spec.features]);
        }
        let k = indices.len();
        let batch = Batch::new(indices, values).expect("policy output is valid");

        let std_msg = cipher.seal(i as u64, &std_encoder.encode(&batch, &cfg).expect("fits"));
        let age_msg = cipher.seal(i as u64, &age_encoder.encode(&batch, &cfg).expect("fits"));
        observations_std.push((seq.label, std_msg.len()));
        observations_age.push((seq.label, age_msg.len()));

        battery_std.draw(energy.sequence_cost(
            k,
            k * spec.features,
            std_msg.len(),
            EncoderCost::Standard,
        ));
        battery_age.draw(energy.sequence_cost(
            k,
            k * spec.features,
            age_msg.len(),
            EncoderCost::Age,
        ));
    }

    println!(
        "collar self-tuned to a {:.1}% collection rate (target 50%)",
        policy.smoothed_rate() * 100.0
    );

    let nmi_of = |obs: &[(usize, usize)]| {
        let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
        let sizes: Vec<usize> = obs.iter().map(|&(_, s)| s).collect();
        nmi(&labels, &sizes)
    };
    println!("\nleakage through authenticated message sizes:");
    println!(
        "  standard encoding: NMI {:.3}  (activity visible to poachers)",
        nmi_of(&observations_std)
    );
    println!("  AGE encoding:      NMI {:.3}", nmi_of(&observations_age));

    let n = data.sequences().len() as f64;
    let spent_std = battery_std
        .capacity()
        .saturating_sub(battery_std.remaining());
    let spent_age = battery_age
        .capacity()
        .saturating_sub(battery_age.remaining());
    let per_seq_std = MilliJoules(spent_std.0 / n);
    let per_seq_age = MilliJoules(spent_age.0 / n);
    println!("\nbattery outlook (230 mAh coin cell, one batch every 6 s):");
    println!(
        "  standard: {per_seq_std} per batch -> {:.1} h",
        Battery::from_mah(230.0, 3.0).lifetime_hours(per_seq_std, 6.0)
    );
    println!(
        "  AGE:      {per_seq_age} per batch -> {:.1} h",
        Battery::from_mah(230.0, 3.0).lifetime_hours(per_seq_age, 6.0)
    );
    println!("\nAGE protects the animal *and* outlasts the unprotected collar.");
}
