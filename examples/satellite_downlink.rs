//! The nanosatellite scenario (§3.3): a battery-constrained satellite
//! downlinks land-cover measurements (Tiselac) in periodic batches. Padding
//! defends the side-channel but blows the energy budget; AGE defends it for
//! free.
//!
//! ```text
//! cargo run --release --example satellite_downlink
//! ```

use age::datasets::{DatasetKind, Scale};
use age::sim::{CipherChoice, Defense, PolicyKind, Runner};

fn main() {
    println!("== Nanosatellite downlink (Tiselac dataset) ==\n");
    let runner = Runner::new(DatasetKind::Tiselac, Scale::Default, 31);

    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>12} {:>10}",
        "budget", "rate", "Std MAE", "Padded MAE", "AGE MAE", "violations"
    );
    for pct in [30u32, 40, 50, 60, 70, 80, 90, 100] {
        let rate = pct as f64 / 100.0;
        let budget = runner.budget_per_seq(rate, CipherChoice::ChaCha20);
        let std_res = runner.run(
            PolicyKind::Deviation,
            Defense::Standard,
            rate,
            CipherChoice::ChaCha20,
            true,
        );
        let padded = runner.run(
            PolicyKind::Deviation,
            Defense::Padded,
            rate,
            CipherChoice::ChaCha20,
            true,
        );
        let age_res = runner.run(
            PolicyKind::Deviation,
            Defense::Age,
            rate,
            CipherChoice::ChaCha20,
            true,
        );
        println!(
            "{:<10} {:>6}% {:>12.3} {:>12.3} {:>12.3} {:>4}/{:>2}/{:<3}",
            format!("{budget}"),
            pct,
            std_res.mean_mae(),
            padded.mean_mae(),
            age_res.mean_mae(),
            std_res.violations(),
            padded.violations(),
            age_res.violations(),
        );
    }

    println!("\nviolations column: Standard / Padded / AGE sequences lost to");
    println!("budget exhaustion. Padding transmits worst-case batches every");
    println!("period, so tight downlink budgets collapse; AGE's messages are");
    println!("*smaller* than the average standard batch and never violate.");
}
