//! The paper's motivating scenario (§3, Figure 7): a medical wearable whose
//! message sizes reveal epileptic seizures — and how AGE stops it.
//!
//! ```text
//! cargo run --release --example wearable_seizure
//! ```

use age::attack::ClassifierAttack;
use age::datasets::{DatasetKind, Scale};
use age::sim::{CipherChoice, Defense, PolicyKind, Runner};

fn main() {
    println!("== Wearable seizure monitor (Epilepsy dataset) ==\n");
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Default, 2022);
    let kind = runner.dataset().kind();

    for defense in [Defense::Standard, Defense::Age] {
        let result = runner.run(
            PolicyKind::Linear,
            defense,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );

        println!("-- Linear policy, defense: {} --", result.defense);
        println!("   mean reconstruction MAE: {:.4}", result.mean_mae());
        println!("   message sizes by event:");
        for (label, mean, std, n) in result.size_stats_by_label() {
            println!(
                "     {:<8} {:7.1} bytes (±{:5.1})  [{} sequences]",
                kind.label_name(label),
                mean,
                std,
                n
            );
        }
        println!("   NMI(size, event): {:.3}", result.nmi());

        // The attacker groups ten same-event messages and classifies.
        let attack = ClassifierAttack {
            total_samples: 2_000,
            ..Default::default()
        };
        let outcome = attack.run(&result.observations());
        println!(
            "   attack accuracy: {:.1}% (blind guessing: {:.1}%)",
            outcome.mean_accuracy() * 100.0,
            outcome.baseline * 100.0
        );

        // Figure 7: the seizure row of the confusion matrix.
        let m = &outcome.confusion;
        let seizure = 0usize;
        let detected = m.get(seizure, seizure);
        let missed: usize = (0..m.n_classes())
            .filter(|&p| p != seizure)
            .map(|p| m.get(seizure, p))
            .sum();
        println!("   seizures classified correctly: {detected}, misclassified: {missed}\n");
    }

    println!("AGE keeps the adaptive policy's low error while making every");
    println!("message the same size, so the attacker can do no better than");
    println!("predicting the most frequent event.");
}
