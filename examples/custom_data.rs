//! Bring your own recordings: load sequences from CSV, size the AGE
//! encoder, and run the sensor/server pipeline with leakage checks.
//!
//! This example writes a small demo CSV to a temp directory first so it
//! runs self-contained; point `csv_path` at your own file with rows of
//! `label,v0,v1,…` (one sequence per row) to use real data.
//!
//! ```text
//! cargo run --release --example custom_data
//! ```

use age::attack::nmi;
use age::core::{inspect_message, target, AgeEncoder, BatchConfig, Encoder};
use age::crypto::{ChaCha20, Cipher};
use age::datasets::{read_sequences, write_sequences, Dataset, DatasetKind, Scale};
use age::fixed::Format;
use age::sampling::LinearPolicy;
use age::sim::node::{Link, Sensor, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Stand-in for "your data": export a generated set to CSV. ---
    let demo = Dataset::generate(DatasetKind::Pavement, Scale::Small, 9);
    let spec = *demo.spec();
    let csv_path = std::env::temp_dir().join("age_custom_data.csv");
    write_sequences(demo.sequences(), std::fs::File::create(&csv_path)?)?;
    println!("wrote demo data to {}", csv_path.display());

    // --- From here on: exactly what you would do with your own CSV. ---
    let (seq_len, features) = (spec.seq_len, spec.features);
    let file = std::io::BufReader::new(std::fs::File::open(&csv_path)?);
    let sequences = read_sequences(file, seq_len, features)?;
    println!(
        "loaded {} sequences of {seq_len}x{features} values",
        sequences.len()
    );

    // Describe your fixed-point format (here: 16 bits, 10 fractional).
    let cfg = BatchConfig::new(seq_len, features, Format::new(16, 10)?)?;

    // Size the fixed message for a 60% collection-rate budget.
    let cipher = ChaCha20::new([0xC0; 32]);
    let m_b = target::target_bytes(&cfg, 0.6);
    let plain = target::plaintext_budget(
        target::reduced_target_bytes(m_b),
        cipher.kind(),
        cipher.overhead(),
        16,
    )
    .max(AgeEncoder::min_target_bytes(&cfg));
    println!(
        "AGE target: {plain} bytes plaintext ({} bytes on air)",
        cipher.message_len(plain)
    );

    let mut sensor = Sensor::new(
        cfg,
        Box::new(LinearPolicy::new(2.0)),
        Box::new(AgeEncoder::new(plain)),
        Box::new(cipher),
    );
    let server = Server::new(
        cfg,
        Box::new(AgeEncoder::new(plain)),
        Box::new(ChaCha20::new([0xC0; 32])),
    );
    let mut link = Link::lossy(0.05, 1); // 5% packet loss

    let mut observations = Vec::new();
    let mut total_mae = 0.0;
    let mut received = 0usize;
    for seq in &sequences {
        let message = sensor.process(&seq.values);
        observations.push((seq.label, message.len()));
        if let Some(delivered) = link.transmit(message) {
            let recon = server.receive(&delivered)?;
            total_mae += recon
                .iter()
                .zip(&seq.values)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / seq.values.len() as f64;
            received += 1;
        }
    }

    println!(
        "\nlink: {} delivered, {} dropped; mean reconstruction MAE {:.4}",
        link.delivered(),
        link.dropped(),
        total_mae / received.max(1) as f64
    );
    let labels: Vec<usize> = observations.iter().map(|&(l, _)| l).collect();
    let sizes: Vec<usize> = observations.iter().map(|&(_, s)| s).collect();
    println!(
        "NMI(size, label) = {:.3}  (0.000 = nothing for an eavesdropper)",
        nmi(&labels, &sizes)
    );

    // Peek inside one message to see where the bits went.
    let one = AgeEncoder::new(plain).encode(
        &age::core::Batch::new(
            (0..seq_len / 2).map(|i| i * 2).collect(),
            sequences[0]
                .values
                .chunks(features)
                .step_by(2)
                .flatten()
                .copied()
                .collect(),
        )?,
        &cfg,
    )?;
    println!("\nmessage layout:\n{}", inspect_message(&one, &cfg)?);
    std::fs::remove_file(&csv_path).ok();
    Ok(())
}
