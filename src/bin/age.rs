//! `age` — command-line front end for the AGE pipeline.
//!
//! ```text
//! age generate <dataset> <out.csv> [--seed N] [--scale small|default|full]
//! age simulate <in.csv> --seq-len N --features D [--bits W] [--frac F]
//!              [--rate R] [--policy uniform|linear|deviation]
//!              [--defense standard|padded|age] [--cipher chacha|aead|aes]
//! age inspect  <in.csv> --seq-len N --features D [--bits W] [--frac F] [--rate R]
//! ```
//!
//! `generate` writes a synthetic dataset as CSV; `simulate` runs the full
//! sensor → cipher → server pipeline over a CSV of `label,v0,v1,…` rows and
//! reports reconstruction error, energy, and leakage; `inspect` prints the
//! bit-level layout of one encoded message.

use std::process::ExitCode;

use age::attack::nmi;
use age::core::{
    inspect_message, target, AgeEncoder, Batch, BatchConfig, Encoder, PaddedEncoder,
    StandardEncoder,
};
use age::crypto::{AesCbc, ChaCha20, ChaCha20Poly1305, Cipher};
use age::datasets::{read_sequences, write_sequences, Dataset, DatasetKind, Scale, Sequence};
use age::energy::{EncoderCost, EnergyModel};
use age::fixed::Format;
use age::reconstruct::{interpolate, mae};
use age::sampling::{DeviationPolicy, LinearPolicy, Policy, UniformPolicy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  age generate <dataset> <out.csv> [--seed N] [--scale small|default|full]
  age simulate <in.csv> --seq-len N --features D [--bits W] [--frac F]
               [--rate R] [--policy uniform|linear|deviation]
               [--defense standard|padded|age] [--cipher chacha|aead|aes]
  age inspect  <in.csv> --seq-len N --features D [--bits W] [--frac F] [--rate R]
datasets: activity characters eog epilepsy mnist password pavement strawberry tiselac";

/// Parsed `--key value` options.
struct Options {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Options { positional, flags })
    }

    fn flag(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flag(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} got invalid value '{v}'")),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".to_string());
    };
    let opts = Options::parse(rest)?;
    match command.as_str() {
        "generate" => generate(&opts),
        "simulate" => simulate(&opts),
        "inspect" => inspect(&opts),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn dataset_kind(name: &str) -> Result<DatasetKind, String> {
    DatasetKind::all()
        .into_iter()
        .find(|k| k.spec().name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset '{name}'"))
}

fn generate(opts: &Options) -> Result<(), String> {
    let [dataset, out_path] = opts.positional.as_slice() else {
        return Err("generate needs <dataset> <out.csv>".to_string());
    };
    let kind = dataset_kind(dataset)?;
    let seed: u64 = opts.flag_parse("seed", 2022)?;
    let scale = match opts.flag("scale").unwrap_or("default") {
        "small" => Scale::Small,
        "default" => Scale::Default,
        "full" => Scale::Full,
        other => return Err(format!("unknown scale '{other}'")),
    };
    let data = Dataset::generate(kind, scale, seed);
    let file = std::fs::File::create(out_path).map_err(|e| format!("cannot write: {e}"))?;
    write_sequences(data.sequences(), file).map_err(|e| e.to_string())?;
    let spec = data.spec();
    println!(
        "wrote {} sequences ({}x{} values, {} labels) to {out_path}",
        data.sequences().len(),
        spec.seq_len,
        spec.features,
        spec.num_labels
    );
    println!(
        "format: {} bits ({} fractional); simulate with: --seq-len {} --features {} --bits {} --frac {}",
        spec.format.width(),
        spec.format.frac(),
        spec.seq_len,
        spec.features,
        spec.format.width(),
        spec.format.frac()
    );
    Ok(())
}

/// Loads the CSV plus the batching configuration from common flags.
fn load(opts: &Options) -> Result<(Vec<Sequence>, BatchConfig), String> {
    let [in_path] = opts.positional.as_slice() else {
        return Err("need exactly one input CSV path".to_string());
    };
    let seq_len: usize = opts.flag_parse("seq-len", 0).and_then(|v| {
        if v == 0 {
            Err("--seq-len is required".into())
        } else {
            Ok(v)
        }
    })?;
    let features: usize = opts.flag_parse("features", 1)?;
    let bits: u8 = opts.flag_parse("bits", 16)?;
    let frac: i16 = opts.flag_parse("frac", 10)?;
    let format = Format::new(bits, frac).map_err(|e| e.to_string())?;
    let cfg = BatchConfig::new(seq_len, features, format).map_err(|e| e.to_string())?;
    let file = std::fs::File::open(in_path).map_err(|e| format!("cannot read: {e}"))?;
    let sequences = read_sequences(std::io::BufReader::new(file), seq_len, features)
        .map_err(|e| e.to_string())?;
    if sequences.is_empty() {
        return Err("input CSV holds no sequences".to_string());
    }
    Ok((sequences, cfg))
}

fn build_policy(opts: &Options, rate: f64, span: f64, d: usize) -> Result<Box<dyn Policy>, String> {
    Ok(match opts.flag("policy").unwrap_or("linear") {
        "uniform" => Box::new(UniformPolicy::new(rate)),
        "linear" => Box::new(LinearPolicy::new(span * (1.0 - rate) * 0.5)),
        "deviation" => Box::new(DeviationPolicy::new(span * (1.0 - rate) * 0.25 / d as f64)),
        other => return Err(format!("unknown policy '{other}'")),
    })
}

fn age_target(cfg: &BatchConfig, rate: f64, cipher: &dyn Cipher) -> usize {
    let m_b = target::target_bytes(cfg, rate);
    target::plaintext_budget(
        target::reduced_target_bytes(m_b),
        cipher.kind(),
        cipher.overhead(),
        16,
    )
    .max(AgeEncoder::min_target_bytes(cfg))
}

fn simulate(opts: &Options) -> Result<(), String> {
    let (sequences, cfg) = load(opts)?;
    let rate: f64 = opts.flag_parse("rate", 0.6)?;
    if !(0.0..=1.0).contains(&rate) || rate == 0.0 {
        return Err("--rate must be in (0, 1]".to_string());
    }
    let cipher: Box<dyn Cipher> = match opts.flag("cipher").unwrap_or("chacha") {
        "chacha" => Box::new(ChaCha20::new([0x42; 32])),
        "aead" => Box::new(ChaCha20Poly1305::new([0x42; 32])),
        "aes" => Box::new(AesCbc::new([0x42; 16])),
        other => return Err(format!("unknown cipher '{other}'")),
    };
    // Rough signal span for threshold heuristics.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for seq in &sequences {
        for &v in &seq.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let policy = build_policy(opts, rate, (hi - lo).max(1e-9), cfg.features())?;
    let encoder: Box<dyn Encoder> = match opts.flag("defense").unwrap_or("age") {
        "standard" => Box::new(StandardEncoder),
        "padded" => Box::new(PaddedEncoder::for_config(&cfg)),
        "age" => Box::new(AgeEncoder::new(age_target(&cfg, rate, cipher.as_ref()))),
        other => return Err(format!("unknown defense '{other}'")),
    };
    let model = EnergyModel::msp430();
    let cost_kind = if encoder.name() == "AGE" {
        EncoderCost::Age
    } else {
        EncoderCost::Standard
    };

    let d = cfg.features();
    let mut total_mae = 0.0;
    let mut total_energy = 0.0;
    let mut total_collected = 0usize;
    let mut observations = Vec::new();
    for (i, seq) in sequences.iter().enumerate() {
        let indices = policy.sample(&seq.values, d);
        let mut values = Vec::with_capacity(indices.len() * d);
        for &t in &indices {
            values.extend_from_slice(&seq.values[t * d..(t + 1) * d]);
        }
        let k = indices.len();
        let batch = Batch::new(indices, values).map_err(|e| e.to_string())?;
        let plaintext = encoder.encode(&batch, &cfg).map_err(|e| e.to_string())?;
        let message = cipher.seal(i as u64, &plaintext);
        observations.push((seq.label, message.len()));
        total_energy += model.sequence_cost(k, k * d, message.len(), cost_kind).0;
        total_collected += k;

        let opened = cipher.open(&message).map_err(|e| e.to_string())?;
        let decoded = encoder.decode(&opened, &cfg).map_err(|e| e.to_string())?;
        let recon = interpolate(decoded.indices(), decoded.values(), cfg.max_len(), d);
        total_mae += mae(&recon, &seq.values);
    }

    let n = sequences.len() as f64;
    let labels: Vec<usize> = observations.iter().map(|&(l, _)| l).collect();
    let sizes: Vec<usize> = observations.iter().map(|&(_, s)| s).collect();
    let distinct: std::collections::HashSet<usize> = sizes.iter().copied().collect();
    println!(
        "policy {} | defense {} | {} sequences",
        policy.name(),
        encoder.name(),
        sequences.len()
    );
    println!(
        "collection rate: {:.1}%  reconstruction MAE: {:.5}",
        100.0 * total_collected as f64 / (n * cfg.max_len() as f64),
        total_mae / n
    );
    println!(
        "energy: {:.2} mJ/sequence  message sizes: {} distinct  NMI(size,label): {:.3}",
        total_energy / n,
        distinct.len(),
        nmi(&labels, &sizes)
    );
    if distinct.len() > 1 {
        println!("WARNING: message sizes vary — an eavesdropper can exploit them");
    }
    Ok(())
}

fn inspect(opts: &Options) -> Result<(), String> {
    let (sequences, cfg) = load(opts)?;
    let rate: f64 = opts.flag_parse("rate", 0.6)?;
    let cipher = ChaCha20::new([0x42; 32]);
    let encoder = AgeEncoder::new(age_target(&cfg, rate, &cipher));
    let d = cfg.features();
    let policy = LinearPolicy::new(0.0); // collect everything: worst case
    let seq = &sequences[0];
    let indices = policy.sample(&seq.values, d);
    let mut values = Vec::with_capacity(indices.len() * d);
    for &t in &indices {
        values.extend_from_slice(&seq.values[t * d..(t + 1) * d]);
    }
    let batch = Batch::new(indices, values).map_err(|e| e.to_string())?;
    let message = encoder.encode(&batch, &cfg).map_err(|e| e.to_string())?;
    let layout = inspect_message(&message, &cfg).map_err(|e| e.to_string())?;
    println!("{layout}");
    println!(
        "data fraction {:.1}%, padding {:.2}%, effective width {:.2} bits/value",
        100.0 * layout.data_fraction(),
        100.0 * layout.padding_fraction(),
        layout.effective_width(d)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parser_handles_flags_and_positionals() {
        let opts =
            Options::parse(&strings(&["in.csv", "--rate", "0.5", "--policy", "linear"])).unwrap();
        assert_eq!(opts.positional, vec!["in.csv"]);
        assert_eq!(opts.flag("rate"), Some("0.5"));
        assert_eq!(opts.flag_parse::<f64>("rate", 0.0).unwrap(), 0.5);
        assert_eq!(opts.flag_parse::<u64>("seed", 7).unwrap(), 7);
        assert!(Options::parse(&strings(&["--dangling"])).is_err());
    }

    #[test]
    fn unknown_commands_are_rejected() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn dataset_names_resolve_case_insensitively() {
        assert!(dataset_kind("epilepsy").is_ok());
        assert!(dataset_kind("EOG").is_ok());
        assert!(dataset_kind("nonesuch").is_err());
    }

    #[test]
    fn generate_then_simulate_and_inspect() {
        let dir = std::env::temp_dir().join(format!("age_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("data.csv");
        let csv_str = csv.to_str().unwrap().to_string();

        run(&strings(&[
            "generate", "pavement", &csv_str, "--scale", "small", "--seed", "3",
        ]))
        .unwrap();
        run(&strings(&[
            "simulate",
            &csv_str,
            "--seq-len",
            "120",
            "--features",
            "1",
            "--bits",
            "16",
            "--frac",
            "10",
            "--rate",
            "0.5",
            "--defense",
            "age",
        ]))
        .unwrap();
        run(&strings(&[
            "inspect",
            &csv_str,
            "--seq-len",
            "120",
            "--features",
            "1",
            "--bits",
            "16",
            "--frac",
            "10",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_validates_inputs() {
        assert!(
            simulate(&Options::parse(&strings(&["missing.csv", "--seq-len", "10"])).unwrap())
                .is_err()
        );
        let opts = Options::parse(&strings(&["x.csv"])).unwrap();
        assert!(load(&opts).is_err(), "--seq-len is required");
    }
}
