//! # AGE — Adaptive Group Encoding
//!
//! A Rust reproduction of *Protecting Adaptive Sampling from Information
//! Leakage on Low-Power Sensors* (Kannan & Hoffmann, ASPLOS 2022).
//!
//! Adaptive sampling policies collect more measurements when the signal is
//! volatile, so the size of a sensor's batched (encrypted) messages tracks
//! the sensed event — a side-channel an eavesdropper can exploit without
//! breaking the encryption. AGE closes it by lossily encoding every batch
//! into a fixed-length message, using pruning, exponent-aware grouping, and
//! per-group fixed-point quantization, at negligible energy overhead.
//!
//! This facade re-exports the workspace crates:
//!
//! - `core` ([`age_core`]) — the AGE encoder, baselines, and ablation variants.
//! - `fixed` ([`age_fixed`]) — fixed-point formats and bit packing.
//! - `crypto` ([`age_crypto`]) — ChaCha20 and AES-128 with exact framing.
//! - `sampling` ([`age_sampling`]) — Uniform/Random/Linear/Deviation policies.
//! - `nn` ([`age_nn`]) — the trainable Skip RNN policy.
//! - `datasets` ([`age_datasets`]) — seeded synthetic Table 3 datasets.
//! - `energy` ([`age_energy`]) — the MSP430/BLE energy model and budgets.
//! - `reconstruct` ([`age_reconstruct`]) — interpolation and error metrics.
//! - `attack` ([`age_attack`]) — NMI, permutation tests, and the AdaBoost
//!   message-size attack.
//! - `sim` ([`age_sim`]) — the end-to-end experiment runner.
//! - `telemetry` ([`age_telemetry`]) — counters, per-batch records, sinks,
//!   and the deterministic PRNG (instrumentation is gated behind the
//!   `telemetry` cargo feature, on by default).
//! - `transport` ([`age_transport`]) — the framed, fault-tolerant
//!   sensor→server link: sealed fixed-size frames, replay window,
//!   deterministic fault injection, and retry/backoff.
//!
//! # Quickstart
//!
//! ```
//! use age::core::{AgeEncoder, Batch, BatchConfig, Encoder};
//! use age::fixed::Format;
//!
//! let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;
//! let encoder = AgeEncoder::new(220);
//! let batch = Batch::new(vec![0, 7, 20], vec![0.25; 18])?;
//! assert_eq!(encoder.encode(&batch, &cfg)?.len(), 220);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use age_attack as attack;
pub use age_core as core;
pub use age_crypto as crypto;
pub use age_datasets as datasets;
pub use age_energy as energy;
pub use age_fixed as fixed;
pub use age_nn as nn;
pub use age_reconstruct as reconstruct;
pub use age_sampling as sampling;
pub use age_sim as sim;
pub use age_telemetry as telemetry;
pub use age_transport as transport;
